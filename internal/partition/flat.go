package partition

import (
	"fmt"
	"slices"

	"adp/internal/graph"
)

// Flat (frozen) construction: the loaders on the big-graph path build
// fragments directly in compiled form from arc-key lists, skipping the
// per-vertex maps entirely. The resulting fragments are bitwise
// equivalent to map-built fragments after Compile — same ids, same
// packed adjacency order (the key list plays the role of AddArc
// insertion order), same sorted arc array — so the engine, the
// refiners (after an automatic thaw) and the equality checkers see no
// difference. What changes is the cost: building 10M arcs allocates a
// handful of arrays instead of millions of map cells.

// buildCompiled constructs a compiled fragment from an arc-key list in
// insertion order (deduplicated; key = src<<32|dst) plus edge-less
// placeholder vertices. nv is the graph's vertex universe; every
// endpoint must be < nv (callers validate).
func buildCompiled(nv int, keys []uint64, loners []graph.VertexID) *compiledFragment {
	// Vertex universe: arc endpoints plus loners, ascending, unique —
	// derived by marking presence in the local array and scanning it in
	// id order, O(nv + keys) instead of sorting a 2|keys| scratch.
	c := &compiledFragment{local: make([]int32, nv)}
	for i := range c.local {
		c.local[i] = -1
	}
	members := 0
	mark := func(v graph.VertexID) {
		if c.local[v] < 0 {
			c.local[v] = 0
			members++
		}
	}
	for _, k := range keys {
		mark(graph.VertexID(k >> 32))
		mark(graph.VertexID(k))
	}
	for _, v := range loners {
		mark(v)
	}
	ids := make([]graph.VertexID, 0, members)
	for v := 0; v < nv; v++ {
		if c.local[v] >= 0 {
			c.local[v] = int32(len(ids))
			ids = append(ids, graph.VertexID(v))
		}
	}
	c.ids = ids

	// Degree counts, then offset carving, then a fill pass in key
	// order: each vertex's packed Out/In sequence ends up in insertion
	// order, exactly as compileFragment packs a map fragment populated
	// by AddArc in the same order.
	outOff := make([]int32, len(ids)+1)
	inOff := make([]int32, len(ids)+1)
	for _, k := range keys {
		outOff[c.local[graph.VertexID(k>>32)]+1]++
		inOff[c.local[graph.VertexID(k)]+1]++
	}
	for l := 0; l < len(ids); l++ {
		outOff[l+1] += outOff[l]
		inOff[l+1] += inOff[l]
	}
	c.outAdj = make([]graph.VertexID, len(keys))
	c.inAdj = make([]graph.VertexID, len(keys))
	outPos := make([]int32, len(ids))
	inPos := make([]int32, len(ids))
	copy(outPos, outOff[:len(ids)])
	copy(inPos, inOff[:len(ids)])
	for _, k := range keys {
		u, v := graph.VertexID(k>>32), graph.VertexID(k)
		lu, lv := c.local[u], c.local[v]
		c.outAdj[outPos[lu]] = v
		outPos[lu]++
		c.inAdj[inPos[lv]] = u
		inPos[lv]++
	}
	c.adjs = make([]Adj, len(ids))
	for l := range ids {
		oLo, oHi := outOff[l], outOff[l+1]
		iLo, iHi := inOff[l], inOff[l+1]
		c.adjs[l] = Adj{Out: c.outAdj[oLo:oHi:oHi], In: c.inAdj[iLo:iHi:iHi]}
	}

	c.arcs = make([]uint64, len(keys))
	copy(c.arcs, keys)
	if !slices.IsSorted(c.arcs) {
		slices.Sort(c.arcs)
	}
	c.buildArcOff()
	return c
}

// freezeFragment wraps a directly-built compiled form in a frozen
// Fragment (no maps until the first mutation thaws them).
func freezeFragment(id int, c *compiledFragment) *Fragment {
	f := &Fragment{id: id}
	f.cf.Store(c)
	return f
}

// dedupKeysInOrder removes duplicate arc keys keeping first
// occurrences in order (AddArc treats a repeated arc as a no-op).
// Already-ascending input — what the writers emit — is detected in one
// O(n) pass and returned untouched; only unsorted input pays for a
// sorted scratch copy to test for duplicates.
func dedupKeysInOrder(keys []uint64) []uint64 {
	ascending := true
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			ascending = false
			break
		}
	}
	if ascending {
		return keys
	}
	sorted := slices.Clone(keys)
	slices.Sort(sorted)
	clean := true
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			clean = false
			break
		}
	}
	if clean {
		return keys
	}
	seen := make(map[uint64]struct{}, len(keys))
	out := keys[:0]
	for _, k := range keys {
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, k)
	}
	return out
}

// assembleFrozen wires frozen fragments into a Partition: the copies
// index is carved out of one counting arena (fragments are visited in
// ascending id order, so each vertex's copy list comes out sorted),
// and masters default to the first fragment holding the vertex —
// the same first-touch rule ensureVertex applies on the map path.
func assembleFrozen(g *graph.Graph, frags []*Fragment) *Partition {
	nv := g.NumVertices()
	p := &Partition{
		g:      g,
		frags:  frags,
		copies: make([][]int32, nv),
		master: make([]int32, nv),
		owner:  make([]int32, nv),
	}
	off := make([]int32, nv+1)
	for _, f := range frags {
		for _, v := range f.cf.Load().ids {
			off[v+1]++
		}
	}
	for v := 0; v < nv; v++ {
		off[v+1] += off[v]
	}
	arena := make([]int32, off[nv])
	pos := make([]int32, nv)
	copy(pos, off[:nv])
	for i, f := range frags {
		for _, v := range f.cf.Load().ids {
			arena[pos[v]] = int32(i)
			pos[v]++
		}
	}
	for v := 0; v < nv; v++ {
		lo, hi := off[v], off[v+1]
		if lo == hi {
			p.master[v] = -1
		} else {
			// Capacity clipped to length: insertCopy appends must
			// reallocate instead of scribbling into the neighbour's
			// arena region.
			p.copies[v] = arena[lo:hi:hi]
			p.master[v] = p.copies[v][0]
		}
		p.owner[v] = -1
	}
	return p
}

// FromVertexAssignmentFlat is FromVertexAssignment built on the frozen
// fast path: identical placement, masters and owners, but fragments
// are constructed directly in compiled form. Use it for large graphs
// where the map-backed constructor's per-vertex allocations dominate.
func FromVertexAssignmentFlat(g *graph.Graph, assign []int, n int) (*Partition, error) {
	if len(assign) != g.NumVertices() {
		return nil, fmt.Errorf("partition: assignment covers %d of %d vertices", len(assign), g.NumVertices())
	}
	for v := range assign {
		if assign[v] < 0 || assign[v] >= n {
			return nil, fmt.Errorf("partition: vertex %d assigned to fragment %d of %d", v, assign[v], n)
		}
	}
	// Count, then fill, each fragment's key list in the exact order
	// FromVertexAssignment issues AddArc calls.
	counts := make([]int64, n)
	g.Edges(func(s, d graph.VertexID) bool {
		counts[assign[s]]++
		if assign[d] != assign[s] {
			counts[assign[d]]++
		}
		return true
	})
	keys := make([][]uint64, n)
	for i := range keys {
		keys[i] = make([]uint64, 0, counts[i])
	}
	g.Edges(func(s, d graph.VertexID) bool {
		k := arcKey(s, d)
		keys[assign[s]] = append(keys[assign[s]], k)
		if assign[d] != assign[s] {
			keys[assign[d]] = append(keys[assign[d]], k)
		}
		return true
	})
	loners := make([][]graph.VertexID, n)
	for v := 0; v < g.NumVertices(); v++ {
		if g.OutDegree(graph.VertexID(v)) == 0 && g.InDegree(graph.VertexID(v)) == 0 {
			loners[assign[v]] = append(loners[assign[v]], graph.VertexID(v))
		}
	}
	nv := g.NumVertices()
	frags := make([]*Fragment, n)
	for i := range frags {
		frags[i] = freezeFragment(i, buildCompiled(nv, keys[i], loners[i]))
	}
	p := assembleFrozen(g, frags)
	for v := 0; v < nv; v++ {
		if p.frags[assign[v]].Has(graph.VertexID(v)) {
			p.master[v] = int32(assign[v])
		}
		p.owner[v] = int32(assign[v])
	}
	return p, nil
}

// eachVertexID calls fn for every vertex copy until fn returns false.
// Iteration order is unspecified on the map form and ascending on a
// frozen one — callers must not rely on it.
func (f *Fragment) eachVertexID(fn func(graph.VertexID) bool) {
	if f.frozen() {
		c := f.cf.Load()
		if c == nil {
			for _, v := range f.czf.Load().ids {
				if !fn(v) {
					return
				}
			}
			return
		}
		for _, v := range c.ids {
			if !fn(v) {
				return
			}
		}
		return
	}
	for v := range f.verts {
		if !fn(v) {
			return
		}
	}
}

// eachArcKey calls fn for every stored arc key until fn returns false.
func (f *Fragment) eachArcKey(fn func(uint64) bool) {
	if f.frozen() {
		for _, k := range f.compiled().arcs {
			if !fn(k) {
				return
			}
		}
		return
	}
	for k := range f.arcs {
		if !fn(k) {
			return
		}
	}
}

// AppendSortedArcKeys appends every stored arc as a packed
// src<<32|dst key in ascending order and returns the extended slice.
// Frozen fragments answer straight from the sorted compiled arc array;
// map fragments pay one collect + sort. Callers (the composite
// coherence index) use this to merge fragments without hashing each
// arc.
func (f *Fragment) AppendSortedArcKeys(dst []uint64) []uint64 {
	if f.frozen() {
		return append(dst, f.compiled().arcs...)
	}
	start := len(dst)
	for k := range f.arcs {
		dst = append(dst, k)
	}
	slices.Sort(dst[start:])
	return dst
}

// hasArcKey is HasArc on a prepacked key.
func (f *Fragment) hasArcKey(k uint64) bool {
	return f.HasArc(graph.VertexID(k>>32), graph.VertexID(k))
}
