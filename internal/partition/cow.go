package partition

// Copy-on-write cloning: the serving plane publishes an epoch snapshot
// per update wave, and a wave touches a handful of fragments — so a
// publish must not pay for the fragments it did not touch. CloneCOW
// compiles the partition (refreshing exactly the fragments the last
// waves invalidated) and then shares every fragment's immutable
// compiled/compressed form with the clone, copying only the partition
// spine (master/owner/weight arrays and the outer copies index).
//
// Sharing discipline (what keeps a shared structure immutable):
//
//   - A *compiledFragment / *compressedFragment value is never mutated
//     after construction. Mutators thaw a private map form out of it
//     (ensureMutable copies the adjacency slices) and drop only their
//     own fragment's pointer (invalidate), so a clone holding the same
//     pointer is untouched. This is the same rule the frozen-fragment
//     machinery of the flat loaders established; CloneCOW leans on it.
//   - The per-vertex copies slices are shared between both sides after
//     a CloneCOW. The copiesShared flag makes insertCopy/removeCopy
//     allocate a fresh slice instead of writing the shared backing
//     array in place (which would also scribble over the frozen
//     loaders' arena). The flag is sticky: once a partition has been
//     COW-cloned, every later copy-set change allocates — the price is
//     one small allocation per changed vertex, paid only by mutated
//     partitions.
//   - master/owner/weight are flat arrays written in place by mutators,
//     so they are memcpy'd at clone time (O(n) words, not O(arcs)).
func (p *Partition) CloneCOW() *Partition {
	p.Compile()
	q := &Partition{
		g:      p.g,
		frags:  make([]*Fragment, len(p.frags)),
		copies: make([][]int32, len(p.copies)),
		master: make([]int32, len(p.master)),
		owner:  make([]int32, len(p.owner)),
	}
	copy(q.master, p.master)
	copy(q.owner, p.owner)
	copy(q.copies, p.copies)
	if p.weight != nil {
		q.weight = append([]float64(nil), p.weight...)
	}
	p.copiesShared = true
	q.copiesShared = true
	for i, f := range p.frags {
		nf := &Fragment{id: i}
		nf.cf.Store(f.cf.Load())
		nf.czf.Store(f.czf.Load())
		q.frags[i] = nf
	}
	return q
}

// ShareStats compares p's fragments against prev's (typically the same
// partition in the previous epoch): fragments whose compiled form is
// the same object are shared (zero marginal memory); the rest are owned
// and their approximate resident bytes are summed. prev == nil counts
// everything as owned — the full materialized size.
func (p *Partition) ShareStats(prev *Partition) (shared, owned int, ownedBytes int64) {
	for i, f := range p.frags {
		c := f.cf.Load()
		if prev != nil && i < len(prev.frags) && c != nil && c == prev.frags[i].cf.Load() {
			shared++
			continue
		}
		owned++
		ownedBytes += f.ApproxBytes()
	}
	return shared, owned, ownedBytes
}

// ApproxBytes estimates the resident size of the fragment's dominant
// representation: exact array lengths for a compiled form, encoded
// byte extents for a compressed-only form, and a rough per-entry cost
// for the map form. Used for the /metrics epoch memory accounting;
// not a precise heap measurement.
func (f *Fragment) ApproxBytes() int64 {
	if c := f.cf.Load(); c != nil {
		return int64(len(c.ids))*4 + int64(len(c.local))*4 + int64(len(c.adjs))*48 +
			int64(len(c.outAdj)+len(c.inAdj))*4 + int64(len(c.arcs))*8 + int64(len(c.arcOff))*4
	}
	if z := f.czf.Load(); z != nil {
		return int64(len(z.ids))*4 + int64(len(z.outOff)+len(z.inOff))*4 +
			int64(len(z.outData)+len(z.inData)+len(z.arcData))
	}
	// Map form: rough amortized map-cell plus adjacency costs.
	return int64(len(f.verts))*64 + int64(len(f.arcs))*16
}
