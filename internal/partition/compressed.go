package partition

import (
	"encoding/binary"

	"adp/internal/graph"
)

// Compressed fragment form: the cold-storage representation behind the
// Compile lifecycle. Adjacency lists keep their insertion order (the
// order floating-point reductions replay in), so they are not sorted
// and are encoded as zigzag deltas; the sorted arc-key array is
// monotone and takes plain deltas. Inflating the compressed form
// reproduces the packed compiled form bitwise (see compile_test), so a
// partition can round-trip packed → compressed → packed freely.
//
// Typical arc cost: ~2 bytes in each adjacency stream plus ~2-5 bytes
// in the arc stream, versus 16 bytes (8-byte key + two 4-byte
// adjacency slots) packed.
type compressedFragment struct {
	nv  int // vertex universe, for the inflated local remap
	ids []graph.VertexID
	// Byte extents of each local id's list within outData/inData.
	outOff, inOff []int32
	outData       []byte
	inData        []byte
	// arcData holds the sorted arc keys as plain uvarint deltas.
	arcData []byte
	numArcs int
}

// appendZigzagDeltas encodes xs as zigzag deltas from a running
// previous value starting at 0.
func appendZigzagDeltas(dst []byte, xs []graph.VertexID) []byte {
	prev := int64(0)
	var tmp [binary.MaxVarintLen64]byte
	for _, x := range xs {
		d := int64(x) - prev
		n := binary.PutUvarint(tmp[:], uint64((d<<1)^(d>>63)))
		dst = append(dst, tmp[:n]...)
		prev = int64(x)
	}
	return dst
}

// decodeZigzagDeltas decodes exactly the bytes of one list into dst.
// Returns the decoded slice and whether the stream was well-formed.
func decodeZigzagDeltas(dst []graph.VertexID, data []byte) ([]graph.VertexID, bool) {
	prev := int64(0)
	for len(data) > 0 {
		zz, n := binary.Uvarint(data)
		if n <= 0 {
			return dst, false
		}
		data = data[n:]
		d := int64(zz>>1) ^ -int64(zz&1)
		prev += d
		if prev < 0 || prev > 0xffffffff {
			return dst, false
		}
		dst = append(dst, graph.VertexID(prev))
	}
	return dst, true
}

// compressFragment builds the compressed form from a compiled one.
func compressFragment(c *compiledFragment) *compressedFragment {
	z := &compressedFragment{
		nv:      len(c.local),
		ids:     c.ids,
		outOff:  make([]int32, len(c.ids)+1),
		inOff:   make([]int32, len(c.ids)+1),
		numArcs: len(c.arcs),
	}
	z.outData = make([]byte, 0, len(c.outAdj)*2)
	z.inData = make([]byte, 0, len(c.inAdj)*2)
	for l := range c.ids {
		z.outData = appendZigzagDeltas(z.outData, c.adjs[l].Out)
		z.outOff[l+1] = int32(len(z.outData))
		z.inData = appendZigzagDeltas(z.inData, c.adjs[l].In)
		z.inOff[l+1] = int32(len(z.inData))
	}
	z.arcData = make([]byte, 0, len(c.arcs)*3)
	var tmp [binary.MaxVarintLen64]byte
	prev := uint64(0)
	for _, k := range c.arcs {
		n := binary.PutUvarint(tmp[:], k-prev)
		z.arcData = append(z.arcData, tmp[:n]...)
		prev = k
	}
	return z
}

// inflate reconstructs the packed compiled form. The compressed form
// is only ever built from a valid compiled fragment, so decode errors
// cannot occur here; the streams decode to exactly the recorded
// extents by construction.
func (z *compressedFragment) inflate() *compiledFragment {
	c := &compiledFragment{
		ids:   z.ids,
		local: make([]int32, z.nv),
	}
	for i := range c.local {
		c.local[i] = -1
	}
	for l, v := range z.ids {
		c.local[v] = int32(l)
	}
	c.adjs = make([]Adj, len(z.ids))
	c.outAdj = make([]graph.VertexID, 0, z.numArcs)
	c.inAdj = make([]graph.VertexID, 0, z.numArcs)
	for l := range z.ids {
		oLo := len(c.outAdj)
		c.outAdj, _ = decodeZigzagDeltas(c.outAdj, z.outData[z.outOff[l]:z.outOff[l+1]])
		iLo := len(c.inAdj)
		c.inAdj, _ = decodeZigzagDeltas(c.inAdj, z.inData[z.inOff[l]:z.inOff[l+1]])
		c.adjs[l] = Adj{Out: c.outAdj[oLo:len(c.outAdj):len(c.outAdj)], In: c.inAdj[iLo:len(c.inAdj):len(c.inAdj)]}
	}
	c.arcs = make([]uint64, 0, z.numArcs)
	data, prev := z.arcData, uint64(0)
	for len(data) > 0 {
		d, n := binary.Uvarint(data)
		if n <= 0 {
			break
		}
		data = data[n:]
		prev += d
		c.arcs = append(c.arcs, prev)
	}
	c.buildArcOff()
	return c
}

// byteSize returns the heap footprint of the compressed form's arrays.
func (z *compressedFragment) byteSize() int64 {
	return int64(len(z.ids))*4 +
		int64(len(z.outOff)+len(z.inOff))*4 +
		int64(len(z.outData)+len(z.inData)+len(z.arcData))
}

// byteSize returns the heap footprint of the compiled form's arrays.
func (c *compiledFragment) byteSize() int64 {
	const adjHdr = 48 // two slice headers
	return int64(len(c.ids))*4 + int64(len(c.local))*4 +
		int64(len(c.adjs))*adjHdr +
		int64(len(c.outAdj)+len(c.inAdj))*4 +
		int64(len(c.arcs))*8 + int64(len(c.arcOff))*4
}

// CompileCompressed compiles every fragment (if needed) and swaps it
// to the compressed cold form, dropping the packed arrays and the
// mutable maps. Accessors that need random access (HasArc, Adjacency,
// the engine's compiled views) transparently inflate a fragment back
// to packed form on first use, and the first structural mutation thaws
// the maps — CompileCompressed is a storage-state transition, not a
// restriction on what the partition can do afterwards.
func (p *Partition) CompileCompressed() *Partition {
	p.Compile()
	for _, f := range p.frags {
		if f.czf.Load() == nil {
			f.czf.Store(compressFragment(f.cf.Load()))
		}
		f.verts, f.arcs = nil, nil
		f.cf.Store(nil)
	}
	return p
}

// FootprintBytes reports the heap bytes of the adjacency storage in
// both lifecycles: packed is the compiled-form cost (computed even
// when the fragment is currently compressed), compressed the
// delta-varint cost (computed even when only the packed form exists).
// The bench series csr_bytes_packed / csr_bytes_compressed gate the
// ratio so the memory win is self-policing.
func (p *Partition) FootprintBytes() (packed, compressed int64) {
	for _, f := range p.frags {
		z := f.czf.Load()
		c := f.cf.Load()
		if c == nil && z == nil {
			p.Compile()
			c = f.cf.Load()
		}
		if z == nil {
			z = compressFragment(c)
		}
		if c == nil {
			// Packed cost is derivable from the compressed metadata
			// without inflating.
			const adjHdr = 48
			packed += int64(len(z.ids))*4 + int64(z.nv)*4 +
				int64(len(z.ids))*adjHdr +
				int64(z.numArcs)*8 + // outAdj+inAdj, 4 bytes each
				int64(z.numArcs)*8 + int64(len(z.ids)+1)*4
		} else {
			packed += c.byteSize()
		}
		compressed += z.byteSize()
	}
	return packed, compressed
}
