package partition

import (
	"bytes"
	"testing"

	"adp/internal/gen"
	"adp/internal/graph"
)

func TestPartitionWriteReadRoundTrip(t *testing.T) {
	g := gen.PowerLaw(gen.PowerLawConfig{N: 400, AvgDeg: 5, Exponent: 2.2, Directed: true, Seed: 13})
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = (v * 3) % 4
	}
	p, err := FromVertexAssignment(g, assign, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb masters/owners so the round trip covers non-defaults.
	for v := 0; v < g.NumVertices(); v += 7 {
		cs := p.Copies(graph.VertexID(v))
		if len(cs) > 1 {
			_ = p.SetMaster(graph.VertexID(v), int(cs[len(cs)-1]))
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := Read(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if p.Fragment(i).NumArcs() != q.Fragment(i).NumArcs() ||
			p.Fragment(i).NumVertices() != q.Fragment(i).NumVertices() {
			t.Fatalf("fragment %d shape changed in round trip", i)
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		vid := graph.VertexID(v)
		if p.Master(vid) != q.Master(vid) {
			t.Fatalf("master of %d changed: %d -> %d", v, p.Master(vid), q.Master(vid))
		}
		if p.Owner(vid) != q.Owner(vid) {
			t.Fatalf("owner of %d changed", v)
		}
	}
}

func TestPartitionReadRejectsWrongGraph(t *testing.T) {
	g := gen.ErdosRenyi(100, 3, true, 1)
	p, err := FromVertexAssignment(g, make([]int, 100), 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	other := gen.ErdosRenyi(101, 3, true, 2)
	if _, err := Read(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("mismatched vertex count accepted")
	}
	// A same-size but different graph fails on arc validation.
	other2 := gen.ErdosRenyi(100, 3, true, 9)
	if _, err := Read(bytes.NewReader(buf.Bytes()), other2); err == nil {
		t.Fatal("alien arcs accepted")
	}
}

func TestPartitionReadBadMagic(t *testing.T) {
	g := gen.ErdosRenyi(10, 2, true, 1)
	if _, err := Read(bytes.NewReader(make([]byte, 64)), g); err == nil {
		t.Fatal("bad magic accepted")
	}
}
