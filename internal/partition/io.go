package partition

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"adp/internal/graph"
)

// Serialisation: a partition persists as its fragment arc sets plus
// the owner and master maps; the graph itself is stored separately
// (see graph.WriteBinary) and supplied again at load time, the way a
// production system keeps topology and placement apart.

const partitionMagic = uint32(0xAD9A_0002)

// Write serialises p in a compact little-endian binary format.
func Write(w io.Writer, p *Partition) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	if err := binary.Write(bw, le, partitionMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, le, uint32(p.NumFragments())); err != nil {
		return err
	}
	if err := binary.Write(bw, le, uint32(p.g.NumVertices())); err != nil {
		return err
	}
	for i := 0; i < p.NumFragments(); i++ {
		f := p.Fragment(i)
		if err := binary.Write(bw, le, uint32(f.NumArcs())); err != nil {
			return err
		}
		var werr error
		f.Vertices(func(v graph.VertexID, adj *Adj) {
			if werr != nil {
				return
			}
			for _, u := range adj.Out {
				if err := binary.Write(bw, le, [2]uint32{uint32(v), uint32(u)}); err != nil {
					werr = err
					return
				}
			}
		})
		if werr != nil {
			return werr
		}
		// Edge-less placeholder copies (isolated vertices).
		var loners []uint32
		f.Vertices(func(v graph.VertexID, adj *Adj) {
			if adj.LocalDegree() == 0 {
				loners = append(loners, uint32(v))
			}
		})
		if err := binary.Write(bw, le, uint32(len(loners))); err != nil {
			return err
		}
		if err := binary.Write(bw, le, loners); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, le, p.owner); err != nil {
		return err
	}
	if err := binary.Write(bw, le, p.master); err != nil {
		return err
	}
	return bw.Flush()
}

// maxFragments caps the fragment count a stored partition may declare;
// real deployments run tens to thousands of workers, so anything past
// this is corrupt input, not a big cluster.
const maxFragments = 1 << 20

// Read reconstructs a partition of g from the format produced by
// Write. The graph must be the one the partition was built over.
//
// Every count and id read from the wire is validated against g before
// use — a truncated, bit-flipped, or hostile stream yields a wrapped
// error naming the offending fragment, never a panic or an
// invariant-violating partition.
func Read(r io.Reader, g *graph.Graph) (*Partition, error) {
	return read(r, g, true)
}

// ReadDynamic is Read for partitions whose edge set has drifted from g
// through logged inserts and deletes (the durable store's snapshots):
// vertex ids are still bounds-checked against g, but arcs are not
// required to exist in g and fragment arc counts may exceed
// g.NumEdges().
func ReadDynamic(r io.Reader, g *graph.Graph) (*Partition, error) {
	return read(r, g, false)
}

// read is the flat recovery decoder: it collects each fragment's arc
// keys with block reads and manual little-endian decoding, builds the
// fragments directly in frozen compiled form (no per-arc map inserts,
// no per-vertex *Adj allocations), and wires the partition-level
// copies/master indexes from one counting arena. The result is
// placement-equal to what the old AddArc-per-arc path produced, with
// identical compiled adjacency order (file order == insertion order),
// at a small fraction of the time and allocations — the store_recover
// hot path.
//
// Reads stay chunked (readChunkArcs bytes at a time) so a corrupt or
// hostile count cannot demand a huge up-front allocation: memory grows
// only as data actually arrives, matching the incremental old path.
func read(r io.Reader, g *graph.Graph, static bool) (*Partition, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("partition: reading header: %w", err)
	}
	magic, n, nv := le.Uint32(hdr[0:]), le.Uint32(hdr[4:]), le.Uint32(hdr[8:])
	if magic != partitionMagic {
		return nil, fmt.Errorf("partition: bad magic %#x", magic)
	}
	if n == 0 || n > maxFragments {
		return nil, fmt.Errorf("partition: stored fragment count %d out of range [1,%d]", n, maxFragments)
	}
	if int(nv) != g.NumVertices() {
		return nil, fmt.Errorf("partition: stored for %d vertices, graph has %d", nv, g.NumVertices())
	}
	const readChunkArcs = 1 << 15
	scratch := make([]byte, readChunkArcs*8)
	readU32 := func() (uint32, error) {
		_, err := io.ReadFull(br, scratch[:4])
		return le.Uint32(scratch[:4]), err
	}
	frags := make([]*Fragment, 0, n)
	for i := 0; i < int(n); i++ {
		arcs, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("partition: reading arc count of fragment %d: %w", i, err)
		}
		if static && int64(arcs) > g.NumEdges() {
			return nil, fmt.Errorf("partition: fragment %d declares %d arcs, graph has %d", i, arcs, g.NumEdges())
		}
		keys := make([]uint64, 0, min(int(arcs), readChunkArcs))
		for done := 0; done < int(arcs); {
			chunk := min(int(arcs)-done, readChunkArcs)
			buf := scratch[:chunk*8]
			if nr, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("partition: reading arc %d of fragment %d: %w", done+nr/8, i, err)
			}
			for a := 0; a < chunk; a++ {
				u, v := le.Uint32(buf[a*8:]), le.Uint32(buf[a*8+4:])
				if u >= nv || v >= nv {
					return nil, fmt.Errorf("partition: fragment %d stores arc (%d,%d) beyond %d vertices", i, u, v, nv)
				}
				if static && !g.HasEdge(graph.VertexID(u), graph.VertexID(v)) {
					return nil, fmt.Errorf("partition: stored arc (%d,%d) not in graph", u, v)
				}
				keys = append(keys, arcKey(graph.VertexID(u), graph.VertexID(v)))
			}
			done += chunk
		}
		// AddArc ignored repeated arcs; the flat path dedups explicitly.
		keys = dedupKeysInOrder(keys)
		loners, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("partition: reading loner count of fragment %d: %w", i, err)
		}
		if loners > nv {
			return nil, fmt.Errorf("partition: fragment %d declares %d loners, graph has %d vertices", i, loners, nv)
		}
		lids := make([]graph.VertexID, 0, min(int(loners), readChunkArcs))
		for done := 0; done < int(loners); {
			chunk := min(int(loners)-done, readChunkArcs)
			buf := scratch[:chunk*4]
			if nr, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("partition: reading loner %d of fragment %d: %w", done+nr/4, i, err)
			}
			for l := 0; l < chunk; l++ {
				v := le.Uint32(buf[l*4:])
				if v >= nv {
					return nil, fmt.Errorf("partition: fragment %d lists loner %d beyond %d vertices", i, v, nv)
				}
				lids = append(lids, graph.VertexID(v))
			}
			done += chunk
		}
		frags = append(frags, freezeFragment(i, buildCompiled(g.NumVertices(), keys, lids)))
	}
	owner := make([]int32, nv)
	if err := readI32s(br, owner, scratch); err != nil {
		return nil, fmt.Errorf("partition: reading owner map: %w", err)
	}
	master := make([]int32, nv)
	if err := readI32s(br, master, scratch); err != nil {
		return nil, fmt.Errorf("partition: reading master map: %w", err)
	}
	p := assembleFrozen(g, frags)
	for v, o := range owner {
		if o < -1 || o >= int32(n) {
			return nil, fmt.Errorf("partition: owner of vertex %d is fragment %d of %d", v, o, n)
		}
	}
	copy(p.owner, owner)
	for v, mfrag := range master {
		if mfrag >= int32(n) {
			return nil, fmt.Errorf("partition: master of vertex %d is fragment %d of %d", v, mfrag, n)
		}
		if mfrag >= 0 && p.frags[mfrag].Has(graph.VertexID(v)) {
			p.master[v] = mfrag
		}
	}
	return p, nil
}

// readI32s block-reads little-endian int32s into dst using scratch.
func readI32s(r io.Reader, dst []int32, scratch []byte) error {
	le := binary.LittleEndian
	for done := 0; done < len(dst); {
		chunk := min(len(dst)-done, len(scratch)/4)
		buf := scratch[:chunk*4]
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		for k := 0; k < chunk; k++ {
			dst[done+k] = int32(le.Uint32(buf[k*4:]))
		}
		done += chunk
	}
	return nil
}
