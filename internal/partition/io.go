package partition

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"adp/internal/graph"
)

// Serialisation: a partition persists as its fragment arc sets plus
// the owner and master maps; the graph itself is stored separately
// (see graph.WriteBinary) and supplied again at load time, the way a
// production system keeps topology and placement apart.

const partitionMagic = uint32(0xAD9A_0002)

// Write serialises p in a compact little-endian binary format.
func Write(w io.Writer, p *Partition) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	if err := binary.Write(bw, le, partitionMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, le, uint32(p.NumFragments())); err != nil {
		return err
	}
	if err := binary.Write(bw, le, uint32(p.g.NumVertices())); err != nil {
		return err
	}
	for i := 0; i < p.NumFragments(); i++ {
		f := p.Fragment(i)
		if err := binary.Write(bw, le, uint32(f.NumArcs())); err != nil {
			return err
		}
		var werr error
		f.Vertices(func(v graph.VertexID, adj *Adj) {
			if werr != nil {
				return
			}
			for _, u := range adj.Out {
				if err := binary.Write(bw, le, [2]uint32{uint32(v), uint32(u)}); err != nil {
					werr = err
					return
				}
			}
		})
		if werr != nil {
			return werr
		}
		// Edge-less placeholder copies (isolated vertices).
		var loners []uint32
		f.Vertices(func(v graph.VertexID, adj *Adj) {
			if adj.LocalDegree() == 0 {
				loners = append(loners, uint32(v))
			}
		})
		if err := binary.Write(bw, le, uint32(len(loners))); err != nil {
			return err
		}
		if err := binary.Write(bw, le, loners); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, le, p.owner); err != nil {
		return err
	}
	if err := binary.Write(bw, le, p.master); err != nil {
		return err
	}
	return bw.Flush()
}

// maxFragments caps the fragment count a stored partition may declare;
// real deployments run tens to thousands of workers, so anything past
// this is corrupt input, not a big cluster.
const maxFragments = 1 << 20

// Read reconstructs a partition of g from the format produced by
// Write. The graph must be the one the partition was built over.
//
// Every count and id read from the wire is validated against g before
// use — a truncated, bit-flipped, or hostile stream yields a wrapped
// error naming the offending fragment, never a panic or an
// invariant-violating partition.
func Read(r io.Reader, g *graph.Graph) (*Partition, error) {
	return read(r, g, true)
}

// ReadDynamic is Read for partitions whose edge set has drifted from g
// through logged inserts and deletes (the durable store's snapshots):
// vertex ids are still bounds-checked against g, but arcs are not
// required to exist in g and fragment arc counts may exceed
// g.NumEdges().
func ReadDynamic(r io.Reader, g *graph.Graph) (*Partition, error) {
	return read(r, g, false)
}

func read(r io.Reader, g *graph.Graph, static bool) (*Partition, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	var magic, n, nv uint32
	for _, ptr := range []*uint32{&magic, &n, &nv} {
		if err := binary.Read(br, le, ptr); err != nil {
			return nil, fmt.Errorf("partition: reading header: %w", err)
		}
	}
	if magic != partitionMagic {
		return nil, fmt.Errorf("partition: bad magic %#x", magic)
	}
	if n == 0 || n > maxFragments {
		return nil, fmt.Errorf("partition: stored fragment count %d out of range [1,%d]", n, maxFragments)
	}
	if int(nv) != g.NumVertices() {
		return nil, fmt.Errorf("partition: stored for %d vertices, graph has %d", nv, g.NumVertices())
	}
	p := NewEmpty(g, int(n))
	for i := 0; i < int(n); i++ {
		var arcs uint32
		if err := binary.Read(br, le, &arcs); err != nil {
			return nil, fmt.Errorf("partition: reading arc count of fragment %d: %w", i, err)
		}
		if static && int64(arcs) > g.NumEdges() {
			return nil, fmt.Errorf("partition: fragment %d declares %d arcs, graph has %d", i, arcs, g.NumEdges())
		}
		for a := uint32(0); a < arcs; a++ {
			var pair [2]uint32
			if err := binary.Read(br, le, &pair); err != nil {
				return nil, fmt.Errorf("partition: reading arc %d of fragment %d: %w", a, i, err)
			}
			if pair[0] >= nv || pair[1] >= nv {
				return nil, fmt.Errorf("partition: fragment %d stores arc (%d,%d) beyond %d vertices", i, pair[0], pair[1], nv)
			}
			if static && !g.HasEdge(graph.VertexID(pair[0]), graph.VertexID(pair[1])) {
				return nil, fmt.Errorf("partition: stored arc (%d,%d) not in graph", pair[0], pair[1])
			}
			p.AddArc(i, graph.VertexID(pair[0]), graph.VertexID(pair[1]))
		}
		var loners uint32
		if err := binary.Read(br, le, &loners); err != nil {
			return nil, fmt.Errorf("partition: reading loner count of fragment %d: %w", i, err)
		}
		if loners > nv {
			return nil, fmt.Errorf("partition: fragment %d declares %d loners, graph has %d vertices", i, loners, nv)
		}
		for l := uint32(0); l < loners; l++ {
			var v uint32
			if err := binary.Read(br, le, &v); err != nil {
				return nil, fmt.Errorf("partition: reading loner %d of fragment %d: %w", l, i, err)
			}
			if v >= nv {
				return nil, fmt.Errorf("partition: fragment %d lists loner %d beyond %d vertices", i, v, nv)
			}
			p.AddVertex(i, graph.VertexID(v))
		}
	}
	owner := make([]int32, nv)
	if err := binary.Read(br, le, owner); err != nil {
		return nil, fmt.Errorf("partition: reading owner map: %w", err)
	}
	master := make([]int32, nv)
	if err := binary.Read(br, le, master); err != nil {
		return nil, fmt.Errorf("partition: reading master map: %w", err)
	}
	for v, o := range owner {
		if o < -1 || o >= int32(n) {
			return nil, fmt.Errorf("partition: owner of vertex %d is fragment %d of %d", v, o, n)
		}
	}
	copy(p.owner, owner)
	for v, mfrag := range master {
		if mfrag >= int32(n) {
			return nil, fmt.Errorf("partition: master of vertex %d is fragment %d of %d", v, mfrag, n)
		}
		if mfrag >= 0 && p.frags[mfrag].Has(graph.VertexID(v)) {
			p.master[v] = mfrag
		}
	}
	return p, nil
}
