// Package partition implements the hybrid graph partition model of
// Section 2 of the paper: an n-cut hybrid partition HP(n) divides a
// graph G into fragments F1..Fn whose vertex and edge sets cover G.
// Vertices are classified per copy as e-cut nodes (the fragment holds
// every incident edge), v-cut nodes (no fragment holds every incident
// edge) or dummy nodes (a copy of an e-cut vertex elsewhere). Border
// (replicated) vertices carry a master-node mapping.
//
// Both edge-cut and vertex-cut partitions are special cases
// (IsEdgeCut, IsVertexCut), and the package computes the paper's
// quality metrics: replication ratios fv and fe and balance factors
// λv and λe.
package partition

import (
	"fmt"
	"sort"
	"sync/atomic"

	"adp/internal/graph"
)

// Status classifies a vertex copy inside one fragment (Section 2).
type Status uint8

const (
	// Absent means the fragment holds no copy of the vertex.
	Absent Status = iota
	// ECutNode is the copy of an e-cut vertex that holds every
	// incident edge; computation for the vertex happens here.
	ECutNode
	// VCutNode is a copy of a vertex none of whose copies is
	// complete; computation is split across the copies.
	VCutNode
	// DummyNode is a non-computing copy of an e-cut vertex.
	DummyNode
)

func (s Status) String() string {
	switch s {
	case Absent:
		return "absent"
	case ECutNode:
		return "e-cut"
	case VCutNode:
		return "v-cut"
	case DummyNode:
		return "dummy"
	}
	return "invalid"
}

// Adj is the local adjacency of one vertex copy inside a fragment.
// Slices are owned by the fragment; callers must not mutate them.
type Adj struct {
	Out []graph.VertexID
	In  []graph.VertexID
}

// LocalDegree returns the number of local incident arcs.
func (a *Adj) LocalDegree() int { return len(a.Out) + len(a.In) }

// Fragment is one piece Fi of a hybrid partition. It stores a set of
// arcs of G as per-vertex adjacency plus an arc-set index for O(1)
// membership tests.
//
// A Fragment has three representations: the mutable map form the
// constructors and refiners build against, a flat compiled form (see
// Compile) the execution engine reads, and a delta-varint compressed
// form (see CompileCompressed) for cold storage. While the maps exist
// they stay authoritative — the compiled form is then a cache dropped
// by every structural mutation. A fragment may also be frozen
// (verts == nil): the flat loaders and the compressed lifecycle build
// the compiled/compressed form directly and skip the maps entirely;
// the first structural mutation thaws the maps back into existence
// (ensureMutable), so every mutator keeps working unchanged.
type Fragment struct {
	id    int
	verts map[graph.VertexID]*Adj
	arcs  map[uint64]struct{}
	// cf caches the compiled form; atomic because concurrent cluster
	// constructions may Compile a shared baseline partition.
	cf atomic.Pointer[compiledFragment]
	// czf holds the delta-varint compressed form; when set and cf is
	// nil, accessors needing random access inflate it on first use.
	czf atomic.Pointer[compressedFragment]
}

// frozen reports whether the fragment currently has no mutable map
// form (compiled/compressed representation only).
func (f *Fragment) frozen() bool { return f.verts == nil }

// compiled returns the flat form, inflating the compressed form when
// that is all the fragment carries. Returns nil on a map-only
// fragment. Racing inflations store interchangeable values, matching
// the Compile contract.
func (f *Fragment) compiled() *compiledFragment {
	if c := f.cf.Load(); c != nil {
		return c
	}
	if z := f.czf.Load(); z != nil {
		c := z.inflate()
		f.cf.Store(c)
		return c
	}
	return nil
}

// ensureMutable rebuilds the map form of a frozen fragment so a
// structural mutator can proceed. Adjacency slices are copied out of
// the packed arrays: clones may share the immutable compiled form, so
// in-place mutation of its storage is never allowed.
func (f *Fragment) ensureMutable() {
	if f.verts != nil {
		return
	}
	c := f.compiled()
	verts := make(map[graph.VertexID]*Adj, len(c.ids))
	for l, v := range c.ids {
		adj := &Adj{}
		if len(c.adjs[l].Out) > 0 {
			adj.Out = append([]graph.VertexID(nil), c.adjs[l].Out...)
		}
		if len(c.adjs[l].In) > 0 {
			adj.In = append([]graph.VertexID(nil), c.adjs[l].In...)
		}
		verts[v] = adj
	}
	arcs := make(map[uint64]struct{}, len(c.arcs))
	for _, k := range c.arcs {
		arcs[k] = struct{}{}
	}
	f.verts, f.arcs = verts, arcs
	// cf stays valid until the caller's mutation invalidates it.
}

func arcKey(u, v graph.VertexID) uint64 { return uint64(u)<<32 | uint64(v) }

// ID returns the fragment index in [0, n).
func (f *Fragment) ID() int { return f.id }

// NumArcs returns |Ei|, the number of arcs stored in the fragment.
func (f *Fragment) NumArcs() int {
	if f.frozen() {
		if z := f.czf.Load(); z != nil {
			return z.numArcs
		}
		return len(f.cf.Load().arcs)
	}
	return len(f.arcs)
}

// NumVertices returns the number of vertex copies (including dummies)
// present in the fragment.
func (f *Fragment) NumVertices() int {
	if f.frozen() {
		if z := f.czf.Load(); z != nil {
			return len(z.ids)
		}
		return len(f.cf.Load().ids)
	}
	return len(f.verts)
}

// Has reports whether a copy of v is present.
func (f *Fragment) Has(v graph.VertexID) bool {
	if f.frozen() {
		if c := f.cf.Load(); c != nil {
			return int(v) < len(c.local) && c.local[v] >= 0
		}
		// Binary search the compressed id array; no inflation needed.
		ids := f.czf.Load().ids
		i := sort.Search(len(ids), func(k int) bool { return ids[k] >= v })
		return i < len(ids) && ids[i] == v
	}
	_, ok := f.verts[v]
	return ok
}

// HasArc reports whether the arc (u,v) is stored locally: a binary
// search on the compiled arc array, a map probe otherwise.
func (f *Fragment) HasArc(u, v graph.VertexID) bool {
	if c := f.cf.Load(); c != nil {
		return c.hasArc(u, v)
	}
	if f.frozen() {
		return f.compiled().hasArc(u, v)
	}
	_, ok := f.arcs[arcKey(u, v)]
	return ok
}

// Adjacency returns the local adjacency of v, or nil if absent.
func (f *Fragment) Adjacency(v graph.VertexID) *Adj {
	c := f.cf.Load()
	if c == nil && f.frozen() {
		c = f.compiled()
	}
	if c != nil {
		if int(v) >= len(c.local) {
			return nil
		}
		l := c.local[v]
		if l < 0 {
			return nil
		}
		return &c.adjs[l]
	}
	return f.verts[v]
}

// Vertices calls fn for every vertex copy in ascending id order.
// Deterministic iteration keeps the refiners reproducible. On a
// compiled fragment this walks the prebuilt id array (no per-call
// sort, no map access).
func (f *Fragment) Vertices(fn func(v graph.VertexID, adj *Adj)) {
	c := f.cf.Load()
	if c == nil && f.frozen() {
		c = f.compiled()
	}
	if c != nil {
		for l, v := range c.ids {
			fn(v, &c.adjs[l])
		}
		return
	}
	for _, v := range f.sortVertices() {
		fn(v, f.verts[v])
	}
}

// SortedVertices returns the ids of all vertex copies in ascending
// order. The returned slice is the caller's to keep.
func (f *Fragment) SortedVertices() []graph.VertexID {
	if f.frozen() {
		if z := f.czf.Load(); z != nil {
			return append([]graph.VertexID(nil), z.ids...)
		}
		return append([]graph.VertexID(nil), f.cf.Load().ids...)
	}
	if c := f.cf.Load(); c != nil {
		return append([]graph.VertexID(nil), c.ids...)
	}
	return f.sortVertices()
}

func (f *Fragment) sortVertices() []graph.VertexID {
	ids := make([]graph.VertexID, 0, len(f.verts))
	for v := range f.verts {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Partition is a hybrid partition HP(n) of a graph.
type Partition struct {
	g      *graph.Graph
	frags  []*Fragment
	copies [][]int32 // copies[v] = sorted fragment ids holding a copy of v
	master []int32   // master[v] = fragment id of the master copy, -1 if v absent everywhere
	owner  []int32   // owner[v] = preferred compute fragment for e-cut designation, -1 if unset
	// weight optionally carries per-vertex data sizes (the |Ary| of
	// the Section-3.1 remark: mutable vertex payloads that scale an
	// algorithm's per-vertex cost). Nil when unused; 1.0 is the
	// implied default.
	weight []float64
	// copiesShared marks the per-vertex copies slices as shared with a
	// CloneCOW sibling (possibly a published epoch): insertCopy and
	// removeCopy must then allocate fresh slices instead of mutating
	// the shared backing arrays in place. Sticky once set.
	copiesShared bool
}

// NewEmpty returns a partition of g with n empty fragments.
func NewEmpty(g *graph.Graph, n int) *Partition {
	p := &Partition{
		g:      g,
		frags:  make([]*Fragment, n),
		copies: make([][]int32, g.NumVertices()),
		master: make([]int32, g.NumVertices()),
		owner:  make([]int32, g.NumVertices()),
	}
	for i := range p.frags {
		p.frags[i] = &Fragment{id: i, verts: map[graph.VertexID]*Adj{}, arcs: map[uint64]struct{}{}}
	}
	for i := range p.master {
		p.master[i] = -1
		p.owner[i] = -1
	}
	return p
}

// Graph returns the underlying graph.
func (p *Partition) Graph() *graph.Graph { return p.g }

// NumFragments returns n.
func (p *Partition) NumFragments() int { return len(p.frags) }

// Fragment returns fragment i.
func (p *Partition) Fragment(i int) *Fragment { return p.frags[i] }

// Fragments returns all fragments.
func (p *Partition) Fragments() []*Fragment { return p.frags }

// Copies returns the sorted fragment ids holding a copy of v. The
// returned slice is owned by the partition.
func (p *Partition) Copies(v graph.VertexID) []int32 { return p.copies[v] }

// Replication returns r(v): the number of mirror copies of v, i.e.
// copies minus one (0 when v is held by a single fragment).
func (p *Partition) Replication(v graph.VertexID) int {
	if len(p.copies[v]) == 0 {
		return 0
	}
	return len(p.copies[v]) - 1
}

// IsBorder reports whether v is replicated across fragments (v ∈ F.O).
func (p *Partition) IsBorder(v graph.VertexID) bool { return len(p.copies[v]) >= 2 }

// Master returns the fragment id of v's master copy (-1 if v is
// nowhere present).
func (p *Partition) Master(v graph.VertexID) int { return int(p.master[v]) }

// SetMaster reassigns the master copy of v to fragment i, which must
// hold a copy of v.
func (p *Partition) SetMaster(v graph.VertexID, i int) error {
	if !p.frags[i].Has(v) {
		return fmt.Errorf("partition: fragment %d holds no copy of %d", i, v)
	}
	p.master[v] = int32(i)
	return nil
}

// ensureVertex adds an empty copy of v to fragment i.
func (p *Partition) ensureVertex(i int, v graph.VertexID) *Adj {
	f := p.frags[i]
	f.ensureMutable()
	if adj, ok := f.verts[v]; ok {
		return adj
	}
	f.invalidate()
	adj := &Adj{}
	f.verts[v] = adj
	p.insertCopy(v, int32(i))
	if p.master[v] < 0 {
		p.master[v] = int32(i)
	}
	return adj
}

func (p *Partition) insertCopy(v graph.VertexID, i int32) {
	cs := p.copies[v]
	pos := sort.Search(len(cs), func(k int) bool { return cs[k] >= i })
	if pos < len(cs) && cs[pos] == i {
		return
	}
	if p.copiesShared {
		// The backing array may belong to a published epoch (or the
		// frozen loaders' arena); never write it in place.
		ns := make([]int32, len(cs)+1)
		copy(ns, cs[:pos])
		ns[pos] = i
		copy(ns[pos+1:], cs[pos:])
		p.copies[v] = ns
		return
	}
	cs = append(cs, 0)
	copy(cs[pos+1:], cs[pos:])
	cs[pos] = i
	p.copies[v] = cs
}

func (p *Partition) removeCopy(v graph.VertexID, i int32) {
	cs := p.copies[v]
	pos := sort.Search(len(cs), func(k int) bool { return cs[k] >= i })
	if pos == len(cs) || cs[pos] != i {
		return
	}
	if p.copiesShared {
		ns := make([]int32, len(cs)-1)
		copy(ns, cs[:pos])
		copy(ns[pos:], cs[pos+1:])
		p.copies[v] = ns
	} else {
		p.copies[v] = append(cs[:pos], cs[pos+1:]...)
	}
	if p.master[v] == i {
		if len(p.copies[v]) > 0 {
			p.master[v] = p.copies[v][0]
		} else {
			p.master[v] = -1
		}
	}
}

// AddVertex places an (initially edge-less) copy of v in fragment i.
// Used for dummy placeholders.
func (p *Partition) AddVertex(i int, v graph.VertexID) { p.ensureVertex(i, v) }

// AddArc stores the arc (u,v) in fragment i, creating vertex copies
// for both endpoints as needed. Adding an arc twice is a no-op.
// For undirected graphs callers should use AddEdge so the symmetric
// arc pair stays co-located.
func (p *Partition) AddArc(i int, u, v graph.VertexID) {
	f := p.frags[i]
	f.ensureMutable()
	k := arcKey(u, v)
	if _, ok := f.arcs[k]; ok {
		return
	}
	f.invalidate()
	f.arcs[k] = struct{}{}
	ua := p.ensureVertex(i, u)
	va := p.ensureVertex(i, v)
	ua.Out = append(ua.Out, v)
	va.In = append(va.In, u)
}

// AddEdge stores the edge (u,v): for undirected graphs both arcs, for
// directed graphs the single arc.
func (p *Partition) AddEdge(i int, u, v graph.VertexID) {
	p.AddArc(i, u, v)
	if p.g.Undirected() {
		p.AddArc(i, v, u)
	}
}

// RemoveArc deletes the arc (u,v) from fragment i. Vertex copies that
// become edge-less are removed. Returns true if the arc was present.
func (p *Partition) RemoveArc(i int, u, v graph.VertexID) bool {
	f := p.frags[i]
	if f.frozen() && !f.HasArc(u, v) {
		return false
	}
	f.ensureMutable()
	k := arcKey(u, v)
	if _, ok := f.arcs[k]; !ok {
		return false
	}
	f.invalidate()
	delete(f.arcs, k)
	ua := f.verts[u]
	ua.Out = removeID(ua.Out, v)
	va := f.verts[v]
	va.In = removeID(va.In, u)
	p.dropIfIsolated(i, u)
	p.dropIfIsolated(i, v)
	return true
}

// RemoveEdge deletes the edge (u,v); for undirected graphs both arcs.
func (p *Partition) RemoveEdge(i int, u, v graph.VertexID) bool {
	ok := p.RemoveArc(i, u, v)
	if p.g.Undirected() {
		ok = p.RemoveArc(i, v, u) || ok
	}
	return ok
}

// RemoveVertex drops v's copy from fragment i together with all its
// local incident arcs.
func (p *Partition) RemoveVertex(i int, v graph.VertexID) {
	f := p.frags[i]
	if f.frozen() && !f.Has(v) {
		return
	}
	f.ensureMutable()
	adj, ok := f.verts[v]
	if !ok {
		return
	}
	for _, w := range append([]graph.VertexID(nil), adj.Out...) {
		p.RemoveArc(i, v, w)
	}
	for _, w := range append([]graph.VertexID(nil), adj.In...) {
		p.RemoveArc(i, w, v)
	}
	// The copy may remain as an edge-less placeholder; drop it.
	if a, ok := f.verts[v]; ok && a.LocalDegree() == 0 {
		f.invalidate()
		delete(f.verts, v)
		p.removeCopy(v, int32(i))
	}
}

func (p *Partition) dropIfIsolated(i int, v graph.VertexID) {
	f := p.frags[i]
	if adj, ok := f.verts[v]; ok && adj.LocalDegree() == 0 {
		f.invalidate()
		delete(f.verts, v)
		p.removeCopy(v, int32(i))
	}
}

func removeID(s []graph.VertexID, v graph.VertexID) []graph.VertexID {
	for i, w := range s {
		if w == v {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// globalIncident returns |Ev|: the number of arcs incident to v in G.
func (p *Partition) globalIncident(v graph.VertexID) int {
	return p.g.InDegree(v) + p.g.OutDegree(v)
}

// IsComplete reports whether fragment i holds every arc incident to v
// (Evi == Ev).
func (p *Partition) IsComplete(i int, v graph.VertexID) bool {
	adj := p.frags[i].Adjacency(v)
	if adj == nil {
		return false
	}
	return adj.LocalDegree() == p.globalIncident(v)
}

// SetVertexWeight records a per-vertex data size (the |Ary| metric of
// the Section-3.1 remark), exposed to cost models via the VData
// variable. Weights default to 1.
func (p *Partition) SetVertexWeight(v graph.VertexID, w float64) {
	if p.weight == nil {
		p.weight = make([]float64, p.g.NumVertices())
		for i := range p.weight {
			p.weight[i] = 1
		}
	}
	p.weight[v] = w
}

// VertexWeight returns v's data size (1 when none was set).
func (p *Partition) VertexWeight(v graph.VertexID) float64 {
	if p.weight == nil {
		return 1
	}
	return p.weight[v]
}

// SetOwner designates fragment i as the preferred compute location of
// v: when i holds a complete copy, that copy is the e-cut node even if
// other fragments also happen to be complete. VMerge and the edge-cut
// constructors use this to pin computation where the paper places it.
func (p *Partition) SetOwner(v graph.VertexID, i int) { p.owner[v] = int32(i) }

// Owner returns the preferred compute fragment of v, or -1.
func (p *Partition) Owner(v graph.VertexID) int { return int(p.owner[v]) }

// CompleteFragment returns the fragment whose copy of v is the e-cut
// node: the designated owner if its copy is complete, otherwise the
// lowest fragment id holding a complete copy; -1 if no copy is
// complete. Exported so the cost tracker can classify v once per
// Refresh instead of once per fragment (Status recomputes it on every
// call).
func (p *Partition) CompleteFragment(v graph.VertexID) int {
	if o := p.owner[v]; o >= 0 && p.IsComplete(int(o), v) {
		return int(o)
	}
	for _, i := range p.copies[v] {
		if p.IsComplete(int(i), v) {
			return int(i)
		}
	}
	return -1
}

// Status classifies the copy of v inside fragment i.
func (p *Partition) Status(i int, v graph.VertexID) Status {
	if !p.frags[i].Has(v) {
		return Absent
	}
	cf := p.CompleteFragment(v)
	switch {
	case cf == i:
		return ECutNode
	case cf >= 0:
		return DummyNode
	default:
		return VCutNode
	}
}

// IsECut reports whether vertex v is e-cut: some fragment holds every
// incident edge of v.
func (p *Partition) IsECut(v graph.VertexID) bool { return p.CompleteFragment(v) >= 0 }
