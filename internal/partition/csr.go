package partition

import (
	"sort"

	"adp/internal/graph"
)

// compiledFragment is the flat, index-addressed execution form of a
// Fragment: a dense local-id remap plus packed CSR-style adjacency and
// a sorted arc array. It exists so the BSP engine's hot accessors
// (HasArc, Vertices, Adjacency, ArcIndex) are array reads and binary
// searches instead of map probes — the memory-layout discipline of
// Buluç et al. applied to the fragment store.
//
// The mutable map form stays authoritative: the compiled form is a
// cache built by Compile and dropped by every structural mutation, so
// the refiners keep their cheap incremental updates and the engine
// recompiles at cluster construction (the compile-after-mutate seam).
type compiledFragment struct {
	// ids holds every vertex copy in ascending id order; the index of
	// a vertex in ids is its local id.
	ids []graph.VertexID
	// local maps a global vertex id to its local id, -1 when absent.
	// Sized to the partition's vertex universe for O(1) remap.
	local []int32
	// adjs[l] is the adjacency of ids[l]; Out/In point into the packed
	// outAdj/inAdj arrays (one allocation each, cache-dense).
	adjs   []Adj
	outAdj []graph.VertexID
	inAdj  []graph.VertexID
	// arcs is the sorted arc-key array; the index of a key is the
	// fragment's arc slot, which the engine's responsibility bitsets
	// are indexed by.
	arcs []uint64
	// arcOff[l] is the first index in arcs whose source is ids[l]
	// (arcOff[len(ids)] = len(arcs)): keys sort by source first, so a
	// source's arcs are contiguous and a probe is an O(1) remap plus a
	// binary search over that vertex's out-degree only.
	arcOff []int32
}

// Compile builds (or rebuilds) the flat execution form of every
// fragment. Idempotent: already-compiled fragments are skipped, and
// any structural mutation (AddArc, RemoveVertex, ...) drops the
// affected fragment's compiled form so a later Compile refreshes it.
// The engine compiles automatically at cluster construction; callers
// only need Compile directly when benchmarking the flat accessors.
//
// Compile is safe to call from concurrent readers of an otherwise
// quiescent partition (the bench grids build clusters over a shared
// cached baseline): compilation is deterministic, so racing compiles
// store interchangeable values. Mutation remains single-threaded, as
// everywhere else in the package.
func (p *Partition) Compile() *Partition {
	nv := p.g.NumVertices()
	for _, f := range p.frags {
		if f.cf.Load() != nil {
			continue
		}
		if z := f.czf.Load(); z != nil {
			f.cf.Store(z.inflate())
			continue
		}
		f.cf.Store(compileFragment(f, nv))
	}
	return p
}

// Compiled reports whether the fragment currently carries its flat
// execution form.
func (f *Fragment) Compiled() bool { return f.cf.Load() != nil }

// invalidate drops the compiled and compressed forms; called by every
// structural mutator so the map form stays the single source of truth.
// Mutators thaw frozen fragments first (ensureMutable), so the maps
// always exist by the time this runs.
func (f *Fragment) invalidate() {
	f.cf.Store(nil)
	f.czf.Store(nil)
}

func compileFragment(f *Fragment, numVertices int) *compiledFragment {
	c := &compiledFragment{
		ids:   make([]graph.VertexID, 0, len(f.verts)),
		local: make([]int32, numVertices),
	}
	for i := range c.local {
		c.local[i] = -1
	}
	for v := range f.verts {
		c.ids = append(c.ids, v)
	}
	sort.Slice(c.ids, func(i, j int) bool { return c.ids[i] < c.ids[j] })
	totalOut, totalIn := 0, 0
	for _, v := range c.ids {
		adj := f.verts[v]
		totalOut += len(adj.Out)
		totalIn += len(adj.In)
	}
	c.adjs = make([]Adj, len(c.ids))
	c.outAdj = make([]graph.VertexID, 0, totalOut)
	c.inAdj = make([]graph.VertexID, 0, totalIn)
	for l, v := range c.ids {
		c.local[v] = int32(l)
		adj := f.verts[v]
		// Packed lists preserve the mutable form's arc order exactly,
		// so compiled execution visits arcs in the same order as the
		// map form and floating-point reductions are unchanged.
		oLo := len(c.outAdj)
		c.outAdj = append(c.outAdj, adj.Out...)
		iLo := len(c.inAdj)
		c.inAdj = append(c.inAdj, adj.In...)
		c.adjs[l] = Adj{Out: c.outAdj[oLo:len(c.outAdj):len(c.outAdj)], In: c.inAdj[iLo:len(c.inAdj):len(c.inAdj)]}
	}
	c.arcs = make([]uint64, 0, len(f.arcs))
	for k := range f.arcs {
		c.arcs = append(c.arcs, k)
	}
	sort.Slice(c.arcs, func(i, j int) bool { return c.arcs[i] < c.arcs[j] })
	c.buildArcOff()
	return c
}

// buildArcOff derives the per-source offsets into the sorted arc
// array; ids and arcs must already be populated and sorted.
func (c *compiledFragment) buildArcOff() {
	c.arcOff = make([]int32, len(c.ids)+1)
	a := 0
	for l, id := range c.ids {
		lo := uint64(id) << 32
		for a < len(c.arcs) && c.arcs[a] < lo {
			a++ // arcs whose source has no copy here cannot exist (Validate), but stay safe
		}
		c.arcOff[l] = int32(a)
		for a < len(c.arcs) && c.arcs[a]>>32 == uint64(id) {
			a++
		}
	}
	c.arcOff[len(c.ids)] = int32(len(c.arcs))
}

// hasArc probes the compiled arc array: O(1) source remap plus a
// binary search over that source's out-arcs only.
func (c *compiledFragment) hasArc(u, v graph.VertexID) bool {
	_, ok := c.arcIndex(u, v)
	return ok
}

func (c *compiledFragment) arcIndex(u, v graph.VertexID) (int, bool) {
	if int(u) >= len(c.local) {
		return 0, false
	}
	lu := c.local[u]
	if lu < 0 {
		return 0, false
	}
	k := arcKey(u, v)
	lo, hi := int(c.arcOff[lu]), int(c.arcOff[lu+1])
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.arcs[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c.arcs) && c.arcs[lo] == k {
		return lo, true
	}
	return 0, false
}

// LocalIndex returns the compiled-form local id of v, or -1 when v has
// no copy here. Only valid on a compiled fragment (engine execution);
// algorithms use it to keep per-vertex state in dense slices instead
// of maps.
func (f *Fragment) LocalIndex(v graph.VertexID) int {
	c := f.compiled()
	if int(v) >= len(c.local) {
		return -1
	}
	return int(c.local[v])
}

// VertexAt returns the vertex with compiled local id l (the inverse of
// LocalIndex). Only valid on a compiled fragment.
func (f *Fragment) VertexAt(l int) graph.VertexID { return f.compiled().ids[l] }

// LocalRemap returns a copy of the compiled local-id remap padded to
// numVertices (-1 for vertices with no copy here) plus the number of
// local slots, or (nil, 0) when the fragment carries no compiled form.
// The cost tracker seeds its dense contribution slabs from it, so on a
// compiled partition the slabs start compact instead of graph-wide.
func (f *Fragment) LocalRemap(numVertices int) ([]int32, int) {
	c := f.compiled()
	if c == nil {
		return nil, 0
	}
	remap := make([]int32, numVertices)
	n := copy(remap, c.local)
	for i := n; i < numVertices; i++ {
		remap[i] = -1
	}
	return remap, len(c.ids)
}

// ArcIndex returns the compiled arc slot of (u,v) — the index the
// engine's responsibility bitsets use — and whether the arc is stored
// locally. Only valid on a compiled fragment.
func (f *Fragment) ArcIndex(u, v graph.VertexID) (int, bool) {
	return f.compiled().arcIndex(u, v)
}

// NumArcSlots returns the compiled arc-array length (equal to NumArcs;
// the engine sizes its responsibility bitsets with it). Only valid on
// a compiled or compressed fragment (the latter inflates on demand).
func (f *Fragment) NumArcSlots() int { return len(f.compiled().arcs) }

// ArcSlots calls fn for every compiled arc slot in ascending key
// order, decoding the (u,v) endpoints. Only valid on a compiled
// fragment.
func (f *Fragment) ArcSlots(fn func(slot int, u, v graph.VertexID)) {
	for k, key := range f.compiled().arcs {
		fn(k, graph.VertexID(key>>32), graph.VertexID(key&0xffffffff))
	}
}
