package partition

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"adp/internal/graph"
)

// corruptFixture serialises the Fig. 1(b) partition for byte-patching.
// Wire layout: magic u32 @0, n u32 @4, nv u32 @8, then per fragment
// {arcs u32, pairs arcs×[2]u32, loners u32, loner ids}, then owner and
// master as nv×i32 (the last 2·nv·4 bytes).
func corruptFixture(t *testing.T) (*graph.Graph, []byte) {
	t.Helper()
	g := figure1G1(t)
	p := figure1bPartition(t, g)
	// The byte offsets in TestPartitionReadCorrupt assume F1 stores 9
	// arcs and neither fragment has loners; guard against fixture drift.
	if p.Fragment(0).NumArcs() != 9 {
		t.Fatalf("fixture drift: F1 stores %d arcs, offsets assume 9", p.Fragment(0).NumArcs())
	}
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	return g, buf.Bytes()
}

func TestPartitionReadCorrupt(t *testing.T) {
	g, valid := corruptFixture(t)
	nv := g.NumVertices()
	ownerOff := len(valid) - 2*4*nv // owner array
	masterOff := len(valid) - 4*nv  // master array
	frag0ArcsOff := 12              // first fragment's arc count
	frag0LonersOff := 12 + 4 + 9*8  // F1 stores 9 arcs, then its loner count
	patch := func(off int, v uint32) []byte {
		b := append([]byte(nil), valid...)
		binary.LittleEndian.PutUint32(b[off:], v)
		return b
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "header"},
		{"truncated header", valid[:7], "header"},
		{"bad magic", patch(0, 0xdeadbeef), "magic"},
		{"zero fragments", patch(4, 0), "fragment count"},
		{"fragment count over cap", patch(4, 1<<24), "fragment count"},
		{"vertex count mismatch", patch(8, 99), "graph has"},
		{"arc count over graph size", patch(frag0ArcsOff, 1000), "declares 1000 arcs"},
		{"arc vertex out of range", patch(frag0ArcsOff+4, 9999), "beyond 10 vertices"},
		{"loner count over graph size", patch(frag0LonersOff, 1000), "declares 1000 loners"},
		{"truncated mid-fragment", valid[:frag0ArcsOff+6], "fragment 0"},
		{"truncated owner map", valid[:ownerOff+4], "owner map"},
		{"truncated master map", valid[:masterOff+4], "master map"},
		{"owner out of range", patch(ownerOff, 7), "owner of vertex 0"},
		{"master out of range", patch(masterOff, 7), "master of vertex 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(bytes.NewReader(tc.data), g)
			if err == nil {
				t.Fatal("corrupt input accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestPartitionReadWrapsIOError: truncation must surface the underlying
// io error through the %w chain.
func TestPartitionReadWrapsIOError(t *testing.T) {
	g, valid := corruptFixture(t)
	_, err := Read(bytes.NewReader(valid[:len(valid)-2]), g)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("error %v does not wrap io.ErrUnexpectedEOF", err)
	}
}

// FuzzPartitionRead: arbitrary bytes must never panic the reader, and
// any accepted partition must survive a write/read round trip with its
// fragment shapes intact (Read only admits arcs present in g, so the
// round trip re-validates everything it stored).
func FuzzPartitionRead(f *testing.F) {
	g := figure1G1(f)
	p := figure1bPartition(f, g)
	var seed bytes.Buffer
	if err := Write(&seed, p); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, 64))
	truncated := append([]byte(nil), seed.Bytes()...)
	f.Add(truncated[:len(truncated)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := Read(bytes.NewReader(data), g)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, q); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		q2, err := Read(&buf, g)
		if err != nil {
			t.Fatalf("round trip parse failed: %v", err)
		}
		for i := 0; i < q.NumFragments(); i++ {
			if q.Fragment(i).NumArcs() != q2.Fragment(i).NumArcs() ||
				q.Fragment(i).NumVertices() != q2.Fragment(i).NumVertices() {
				t.Fatalf("fragment %d shape changed in round trip", i)
			}
		}
	})
}
