package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adp/internal/gen"
	"adp/internal/graph"
)

func TestFigure1bIsEdgeCut(t *testing.T) {
	g := figure1G1(t)
	p := figure1bPartition(t, g)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.IsEdgeCut() {
		t.Fatal("Fig 1(b) partition should be an edge-cut")
	}
	if p.IsVertexCut() {
		t.Fatal("Fig 1(b) partition replicates cut arcs, cannot be a vertex-cut")
	}
}

// Example 5: for Fig 1(b), fv = 1, fe = 17/13, and the max/avg edge
// ratio is 18/17 (the paper reports balance as max/avg; we report
// λ = max/avg − 1 per the formal definition).
func TestFigure1bMetrics(t *testing.T) {
	g := figure1G1(t)
	p := figure1bPartition(t, g)
	m := p.ComputeMetrics()
	if math.Abs(m.FV-1.0) > 1e-12 {
		t.Errorf("fv = %v, want 1", m.FV)
	}
	if math.Abs(m.FE-17.0/13.0) > 1e-12 {
		t.Errorf("fe = %v, want 17/13", m.FE)
	}
	if math.Abs((1+m.LambdaE)-18.0/17.0) > 1e-12 {
		t.Errorf("1+λe = %v, want 18/17", 1+m.LambdaE)
	}
	if math.Abs(m.LambdaV) > 1e-12 {
		t.Errorf("λv = %v, want 0 (both fragments own 5 vertices)", m.LambdaV)
	}
}

// Example 1: the workload of CN on Fig 1(b) is 10 vs 2 (5× skew)
// despite perfect vertex/edge balance, and 6 vs 6 under Fig 1(c).
func TestFigure1CNWorkloadSkew(t *testing.T) {
	g := figure1G1(t)
	assignB := []int{0, 0, 1, 1, 1, 0, 0, 0, 1, 1}
	if w1, w2 := cnWorkload(g, assignB, 0), cnWorkload(g, assignB, 1); w1 != 10 || w2 != 2 {
		t.Errorf("Fig 1(b) CN workload = (%d,%d), want (10,2)", w1, w2)
	}
	assignC := []int{0, 0, 1, 1, 1, 1, 0, 1, 1, 1}
	if w1, w2 := cnWorkload(g, assignC, 0), cnWorkload(g, assignC, 1); w1 != 6 || w2 != 6 {
		t.Errorf("Fig 1(c) CN workload = (%d,%d), want (6,6)", w1, w2)
	}
}

func TestFigure1cMetrics(t *testing.T) {
	g := figure1G1(t)
	p := figure1cPartition(t, g)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	m := p.ComputeMetrics()
	// The paper's figure reports fe = 17/13; our reconstruction of the
	// edge set (which matches the workload numbers of Example 1
	// exactly) replicates 5 cut arcs under this assignment, so 18/13.
	if math.Abs(m.FE-18.0/13.0) > 1e-12 {
		t.Errorf("fe = %v, want 18/13", m.FE)
	}
	// Example 5 reports max/avg vertex ratio 7/5 for Fig 1(c).
	if math.Abs((1+m.LambdaV)-7.0/5.0) > 1e-12 {
		t.Errorf("1+λv = %v, want 7/5", 1+m.LambdaV)
	}
}

func TestStatusClassification(t *testing.T) {
	g := figure1G1(t)
	p := figure1bPartition(t, g)
	// t2 is owned by F0 and has in-edges from s3, s4 (owned by F1),
	// so t2's copy in F0 is the e-cut node and F1 holds a dummy.
	if s := p.Status(0, t2); s != ECutNode {
		t.Errorf("t2 in F0 = %v, want e-cut", s)
	}
	if s := p.Status(1, t2); s != DummyNode {
		t.Errorf("t2 in F1 = %v, want dummy", s)
	}
	// s5 only touches F1.
	if s := p.Status(1, s5); s != ECutNode {
		t.Errorf("s5 in F1 = %v, want e-cut", s)
	}
	if s := p.Status(0, s5); s != Absent {
		t.Errorf("s5 in F0 = %v, want absent", s)
	}
	if p.Replication(t2) != 1 || p.Replication(s5) != 0 {
		t.Errorf("replication: t2=%d s5=%d", p.Replication(t2), p.Replication(s5))
	}
}

func TestVertexCutConstruction(t *testing.T) {
	g := figure1G1(t)
	// Route each arc by its target parity.
	p, err := FromEdgeAssignment(g, func(s, d graph.VertexID) int { return int(d) % 2 }, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.IsVertexCut() {
		t.Fatal("edge assignment must yield a vertex-cut")
	}
	m := p.ComputeMetrics()
	if math.Abs(m.FE-1.0) > 1e-12 {
		t.Errorf("vertex-cut fe = %v, want 1", m.FE)
	}
	// s1 has out-edges to t1(5,odd),t2(6,even),t3(7,odd): present in
	// both fragments and v-cut.
	if !p.IsBorder(s1) {
		t.Error("s1 should be border")
	}
	if s := p.Status(0, s1); s != VCutNode {
		t.Errorf("s1 in F0 = %v, want v-cut", s)
	}
	if s := p.Status(1, s1); s != VCutNode {
		t.Errorf("s1 in F1 = %v, want v-cut", s)
	}
}

func TestUndirectedEdgeCoLocation(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}, true)
	if err != nil {
		t.Fatal(err)
	}
	p, err := FromEdgeAssignment(g, func(s, d graph.VertexID) int { return int(s) % 2 }, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		f := p.Fragment(i)
		f.Vertices(func(v graph.VertexID, adj *Adj) {
			for _, w := range adj.Out {
				if !f.HasArc(w, v) {
					t.Errorf("fragment %d has (%d,%d) without its mirror", i, v, w)
				}
			}
		})
	}
}

func TestAddRemoveArcMaintainsIndexes(t *testing.T) {
	g := figure1G1(t)
	p := NewEmpty(g, 2)
	p.AddArc(0, s1, t1)
	p.AddArc(0, s1, t2)
	p.AddArc(1, s1, t3)
	if p.Replication(s1) != 1 {
		t.Fatalf("s1 replication = %d, want 1", p.Replication(s1))
	}
	if p.Master(s1) != 0 {
		t.Fatalf("s1 master = %d, want 0 (first placement)", p.Master(s1))
	}
	// Removing s1's only arc in fragment 1 drops the copy and the
	// mirror count.
	if !p.RemoveArc(1, s1, t3) {
		t.Fatal("RemoveArc reported arc absent")
	}
	if p.Replication(s1) != 0 || p.Fragment(1).Has(s1) {
		t.Fatal("fragment 1 copy of s1 should be gone")
	}
	// Double add is a no-op.
	p.AddArc(0, s1, t1)
	if p.Fragment(0).NumArcs() != 2 {
		t.Fatalf("duplicate AddArc changed arc count: %d", p.Fragment(0).NumArcs())
	}
	// Master falls back when the master copy disappears.
	p.AddArc(1, s2, t1)
	p.AddArc(0, s2, t2)
	if p.Master(s2) != 1 {
		t.Fatalf("s2 master = %d, want 1", p.Master(s2))
	}
	p.RemoveArc(1, s2, t1)
	if p.Master(s2) != 0 {
		t.Fatalf("s2 master should fall back to 0, got %d", p.Master(s2))
	}
}

func TestRemoveVertex(t *testing.T) {
	g := figure1G1(t)
	p := figure1bPartition(t, g)
	p.RemoveVertex(0, t2)
	if p.Fragment(0).Has(t2) {
		t.Fatal("t2 still present in F0")
	}
	// The arcs into t2 from F0's sources are gone from F0 but F1
	// still holds its replicas, so t2 survives in F1.
	if !p.Fragment(1).Has(t2) {
		t.Fatal("t2 lost from F1")
	}
}

func TestSetMaster(t *testing.T) {
	g := figure1G1(t)
	p := figure1bPartition(t, g)
	if err := p.SetMaster(t2, 1); err != nil {
		t.Fatal(err)
	}
	if p.Master(t2) != 1 {
		t.Fatal("SetMaster did not take effect")
	}
	if err := p.SetMaster(s5, 0); err == nil {
		t.Fatal("SetMaster to a fragment without a copy must fail")
	}
}

func TestBorderNodes(t *testing.T) {
	g := figure1G1(t)
	p := figure1bPartition(t, g)
	b0 := p.BorderNodes(0)
	// F0's border: dummies s3,s4 plus its owned targets t2,t3 that F1
	// replicates via cut arcs.
	want := map[graph.VertexID]bool{s3: true, s4: true, t2: true, t3: true}
	if len(b0) != len(want) {
		t.Fatalf("border of F0 = %v", b0)
	}
	for _, v := range b0 {
		if !want[v] {
			t.Fatalf("unexpected border vertex %d", v)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := figure1G1(t)
	p := figure1bPartition(t, g)
	q := p.Clone()
	q.RemoveArc(0, s1, t1)
	if !p.Fragment(0).HasArc(s1, t1) {
		t.Fatal("mutating the clone leaked into the original")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err == nil {
		// Removing a unique arc breaks coverage; expected.
		t.Fatal("clone should fail validation after dropping a unique arc")
	}
}

func TestIsolatedVertexPlacement(t *testing.T) {
	g, err := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	p, err := FromVertexAssignment(g, []int{0, 0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.Fragment(1).Has(2) {
		t.Fatal("isolated vertex 2 not placed")
	}
}

func TestFromVertexAssignmentErrors(t *testing.T) {
	g := figure1G1(t)
	if _, err := FromVertexAssignment(g, []int{0}, 2); err == nil {
		t.Fatal("short assignment accepted")
	}
	bad := make([]int, 10)
	bad[3] = 9
	if _, err := FromVertexAssignment(g, bad, 2); err == nil {
		t.Fatal("out-of-range fragment accepted")
	}
	if _, err := FromEdgeAssignment(g, func(s, d graph.VertexID) int { return 5 }, 2); err == nil {
		t.Fatal("out-of-range edge assignment accepted")
	}
}

func TestBalanceFactor(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{0, 0}, 0},
		{[]float64{4, 4, 4}, 0},
		{[]float64{9, 8}, 9.0/8.5 - 1},
		{[]float64{10, 0}, 1},
	}
	for _, c := range cases {
		if got := BalanceFactor(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("BalanceFactor(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

// Property: any vertex assignment over a random graph produces a valid
// edge-cut partition with fv counting every vertex exactly once.
func TestQuickVertexAssignmentAlwaysEdgeCut(t *testing.T) {
	f := func(seed int64, nFrag uint8) bool {
		n := int(nFrag)%4 + 2
		g := gen.ErdosRenyi(60, 3, true, seed)
		rng := rand.New(rand.NewSource(seed + 1))
		assign := make([]int, g.NumVertices())
		for i := range assign {
			assign[i] = rng.Intn(n)
		}
		p, err := FromVertexAssignment(g, assign, n)
		if err != nil || p.Validate() != nil {
			return false
		}
		if !p.IsEdgeCut() {
			return false
		}
		total := 0
		for i := 0; i < n; i++ {
			total += p.NonDummyCount(i)
		}
		return total == g.NumVertices()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: any edge assignment produces a valid vertex-cut with
// fe = 1 and arc-disjoint fragments.
func TestQuickEdgeAssignmentAlwaysVertexCut(t *testing.T) {
	f := func(seed int64, nFrag uint8) bool {
		n := int(nFrag)%4 + 2
		g := gen.ErdosRenyi(60, 3, true, seed)
		p, err := FromEdgeAssignment(g, func(s, d graph.VertexID) int {
			return int(s^d) % n
		}, n)
		if err != nil || p.Validate() != nil {
			return false
		}
		if !p.IsVertexCut() {
			return false
		}
		return int64(p.StorageArcs()) == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: status partitioning is total — every copy is exactly one
// of e-cut, v-cut or dummy, and a vertex has at most one e-cut copy.
func TestQuickStatusTotal(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(50, 2.5, true, seed)
		p, err := FromEdgeAssignment(g, func(s, d graph.VertexID) int { return int(d) % 3 }, 3)
		if err != nil {
			return false
		}
		for v := 0; v < g.NumVertices(); v++ {
			ecuts := 0
			for i := 0; i < 3; i++ {
				switch p.Status(i, graph.VertexID(v)) {
				case ECutNode:
					ecuts++
				case Absent:
					if p.Fragment(i).Has(graph.VertexID(v)) {
						return false
					}
				}
			}
			if ecuts > 1 {
				return false
			}
			if p.IsECut(graph.VertexID(v)) != (ecuts == 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
