package partition

import (
	"adp/internal/graph"
	"adp/internal/pool"
)

// Metrics aggregates the structural quality measures of Section 2.
type Metrics struct {
	FV      float64 // vertex replication ratio fv = Σ|Vi| / |V| (non-dummy copies)
	FE      float64 // edge replication ratio fe = Σ|Ei| / |E|
	LambdaV float64 // vertex balance factor λv
	LambdaE float64 // edge balance factor λe
}

// NonDummyCount returns the number of computing (e-cut or v-cut)
// vertex copies in fragment i: the |Vi| used by fv and λv.
func (p *Partition) NonDummyCount(i int) int {
	count := 0
	p.frags[i].eachVertexID(func(v graph.VertexID) bool {
		if s := p.Status(i, v); s == ECutNode || s == VCutNode {
			count++
		}
		return true
	})
	return count
}

// ComputeMetrics evaluates fv, fe, λv and λe for the partition. The
// per-fragment counts accumulate on the shared pool, one slot per
// fragment; the partition must not be mutated concurrently.
func (p *Partition) ComputeMetrics() Metrics {
	n := len(p.frags)
	vCounts := make([]float64, n)
	eCounts := make([]float64, n)
	pool.Default().RunChunks(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			vCounts[i] = float64(p.NonDummyCount(i))
			eCounts[i] = float64(p.frags[i].NumArcs())
		}
	})
	var vSum, eSum float64
	for i := range p.frags {
		vSum += vCounts[i]
		eSum += eCounts[i]
	}
	m := Metrics{}
	if p.g.NumVertices() > 0 {
		m.FV = vSum / float64(p.g.NumVertices())
	}
	if p.g.NumEdges() > 0 {
		m.FE = eSum / float64(p.g.NumEdges())
	}
	m.LambdaV = balanceFactor(vCounts)
	m.LambdaE = balanceFactor(eCounts)
	return m
}

// balanceFactor returns the smallest λ with max(xs) ≤ (1+λ)·avg(xs),
// i.e. max/avg − 1, the paper's balance factor definition.
func balanceFactor(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, max float64
	for _, x := range xs {
		sum += x
		if x > max {
			max = x
		}
	}
	if sum == 0 {
		return 0
	}
	avg := sum / float64(len(xs))
	return max/avg - 1
}

// BalanceFactor exposes balanceFactor for cost-based λA computations
// in other packages.
func BalanceFactor(xs []float64) float64 { return balanceFactor(xs) }

// IsEdgeCut reports whether the partition is an edge-cut special case:
// every vertex is e-cut and the e-cut node sets of the fragments are
// pairwise disjoint (automatic with canonical e-cut designation, so
// the test reduces to "every vertex with a copy is e-cut").
func (p *Partition) IsEdgeCut() bool {
	for v := 0; v < p.g.NumVertices(); v++ {
		if len(p.copies[v]) == 0 {
			continue
		}
		if !p.IsECut(graph.VertexID(v)) {
			return false
		}
	}
	return true
}

// IsVertexCut reports whether the partition is a vertex-cut special
// case: fragment edge sets are pairwise disjoint.
func (p *Partition) IsVertexCut() bool {
	var total int
	for _, f := range p.frags {
		total += f.NumArcs()
	}
	return int64(total) == p.g.NumEdges()
}

// StorageVertices returns the total number of vertex copies stored,
// dummies included — the space-accounting numerator for Exp-4.
func (p *Partition) StorageVertices() int {
	total := 0
	for _, f := range p.frags {
		total += f.NumVertices()
	}
	return total
}

// StorageArcs returns Σ|Ei| over fragments.
func (p *Partition) StorageArcs() int {
	total := 0
	for _, f := range p.frags {
		total += f.NumArcs()
	}
	return total
}

// BorderNodes returns Fi.O for fragment i: the vertices of Fi that are
// replicated somewhere else, in ascending order.
func (p *Partition) BorderNodes(i int) []graph.VertexID {
	var out []graph.VertexID
	for _, v := range p.frags[i].SortedVertices() {
		if p.IsBorder(v) {
			out = append(out, v)
		}
	}
	return out
}
