package partition_test

import (
	"math/rand"
	"strings"
	"testing"

	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partition"
)

// TestFromVertexAssignmentFlatMatchesMap pins the flat (frozen
// compiled-form) constructor to the map-based one: same placement,
// same masters and owners, same adjacency contents and walk order,
// across random assignments of directed and undirected graphs.
func TestFromVertexAssignmentFlatMatchesMap(t *testing.T) {
	for _, directed := range []bool{true, false} {
		for seed := int64(0); seed < 4; seed++ {
			g := gen.PowerLaw(gen.PowerLawConfig{N: 220, AvgDeg: 5, Exponent: 2.2, Directed: directed, Seed: seed})
			rng := rand.New(rand.NewSource(seed * 31))
			assign := make([]int, g.NumVertices())
			for i := range assign {
				assign[i] = rng.Intn(5)
			}
			pm, err := partition.FromVertexAssignment(g, assign, 5)
			if err != nil {
				t.Fatal(err)
			}
			pf, err := partition.FromVertexAssignmentFlat(g, assign, 5)
			if err != nil {
				t.Fatal(err)
			}
			if err := pm.EqualPlacement(pf); err != nil {
				t.Fatalf("directed=%v seed=%d: flat placement diverges: %v", directed, seed, err)
			}
			for v := 0; v < g.NumVertices(); v++ {
				vid := graph.VertexID(v)
				if pm.Master(vid) != pf.Master(vid) {
					t.Fatalf("vertex %d: master %d vs %d", v, pm.Master(vid), pf.Master(vid))
				}
				if pm.Owner(vid) != pf.Owner(vid) {
					t.Fatalf("vertex %d: owner %d vs %d", v, pm.Owner(vid), pf.Owner(vid))
				}
			}
			for i := 0; i < pm.NumFragments(); i++ {
				sameFragment(t, pm, pf, i)
			}
			if err := pf.Validate(); err != nil {
				t.Fatalf("flat partition invalid: %v", err)
			}
		}
	}
}

// TestFromVertexAssignmentFlatErrors pins the error messages to the
// map constructor's.
func TestFromVertexAssignmentFlatErrors(t *testing.T) {
	g := gen.PowerLaw(gen.PowerLawConfig{N: 20, AvgDeg: 3, Exponent: 2.2, Directed: true, Seed: 1})
	if _, err := partition.FromVertexAssignmentFlat(g, make([]int, 3), 2); err == nil ||
		!strings.Contains(err.Error(), "covers 3 of") {
		t.Fatalf("short assignment not rejected: %v", err)
	}
	bad := make([]int, g.NumVertices())
	bad[7] = 9
	if _, err := partition.FromVertexAssignmentFlat(g, bad, 2); err == nil ||
		!strings.Contains(err.Error(), "vertex 7 assigned to fragment 9") {
		t.Fatalf("out-of-range assignment not rejected: %v", err)
	}
}

// TestCompileCompressedEquivalence is the acceptance criterion for the
// delta-varint compressed form: across randomized partition shapes
// (including refined hybrids), a partition squeezed down to compressed
// fragments answers every accessor bitwise identically to the mutable
// original — the compressed form inflates to the exact compiled
// layout.
func TestCompileCompressedEquivalence(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		for mode := 0; mode < 3; mode++ {
			p := buildShape(t, seed, mode)
			q := p.Clone().CompileCompressed()
			for i := 0; i < p.NumFragments(); i++ {
				sameFragment(t, p, q, i)
			}
			// HasArc parity both directions on every graph arc.
			p.Graph().Edges(func(u, v graph.VertexID) bool {
				for i := 0; i < p.NumFragments(); i++ {
					if p.Fragment(i).HasArc(u, v) != q.Fragment(i).HasArc(u, v) ||
						p.Fragment(i).HasArc(v, u) != q.Fragment(i).HasArc(v, u) {
						t.Fatalf("seed=%d mode=%d frag %d: HasArc diverges at (%d,%d)", seed, mode, i, u, v)
					}
				}
				return true
			})
			if err := p.EqualPlacement(q); err != nil {
				t.Fatalf("seed=%d mode=%d: %v", seed, mode, err)
			}
		}
	}
}

// TestCompressedThaw verifies a compressed partition stays fully
// mutable: mutations thaw fragments back to map form transparently and
// the result still validates and matches a never-compressed twin.
func TestCompressedThaw(t *testing.T) {
	p := buildShape(t, 3, 0)
	q := p.Clone().CompileCompressed()
	var moved []graph.Edge
	p.Graph().Edges(func(u, v graph.VertexID) bool {
		if len(moved) < 20 {
			moved = append(moved, graph.Edge{Src: u, Dst: v})
		}
		return len(moved) < 20
	})
	for _, e := range moved {
		for _, pp := range []*partition.Partition{p, q} {
			pp.RemoveArc(0, e.Src, e.Dst)
			pp.AddArc(1, e.Src, e.Dst)
		}
	}
	if err := p.EqualPlacement(q); err != nil {
		t.Fatalf("thawed compressed partition diverged: %v", err)
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("thawed compressed partition invalid: %v", err)
	}
}

// TestFootprintBytes sanity-checks the packed/compressed byte
// accounting the bench series reports: both positive, and on a
// power-law graph the gap-compressed adjacency is strictly smaller
// than the fixed-width packed form.
func TestFootprintBytes(t *testing.T) {
	g := gen.PowerLaw(gen.PowerLawConfig{N: 3000, AvgDeg: 8, Exponent: 2.1, Directed: true, Seed: 9})
	assign := make([]int, g.NumVertices())
	for i := range assign {
		assign[i] = i % 4
	}
	p, err := partition.FromVertexAssignmentFlat(g, assign, 4)
	if err != nil {
		t.Fatal(err)
	}
	packed, compressed := p.FootprintBytes()
	if packed <= 0 || compressed <= 0 {
		t.Fatalf("non-positive footprints: packed=%d compressed=%d", packed, compressed)
	}
	if compressed >= packed {
		t.Fatalf("compressed form (%d bytes) not smaller than packed (%d bytes)", compressed, packed)
	}
}
