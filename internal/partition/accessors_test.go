package partition

import (
	"testing"

	"adp/internal/graph"
)

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		Absent:      "absent",
		ECutNode:    "e-cut",
		VCutNode:    "v-cut",
		DummyNode:   "dummy",
		Status(200): "invalid",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Status(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestFragmentAccessors(t *testing.T) {
	g := figure1G1(t)
	p := figure1bPartition(t, g)
	f := p.Fragment(1)
	if f.ID() != 1 {
		t.Fatalf("ID = %d", f.ID())
	}
	if adj := f.Adjacency(s5); adj == nil || len(adj.Out) != 2 {
		t.Fatalf("Adjacency(s5) = %+v", adj)
	}
	if f.Adjacency(graph.VertexID(99)) != nil {
		t.Fatal("Adjacency of absent vertex should be nil")
	}
	if p.Graph() != g {
		t.Fatal("Graph accessor broken")
	}
	if len(p.Fragments()) != 2 {
		t.Fatal("Fragments accessor broken")
	}
}

func TestRemoveEdgeUndirected(t *testing.T) {
	g, err := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, true)
	if err != nil {
		t.Fatal(err)
	}
	p := NewEmpty(g, 1)
	p.AddEdge(0, 0, 1)
	p.AddEdge(0, 1, 2)
	if !p.RemoveEdge(0, 0, 1) {
		t.Fatal("RemoveEdge reported absent")
	}
	if p.Fragment(0).HasArc(0, 1) || p.Fragment(0).HasArc(1, 0) {
		t.Fatal("undirected pair not fully removed")
	}
	if p.RemoveEdge(0, 0, 1) {
		t.Fatal("double removal reported present")
	}
}

func TestStorageVertices(t *testing.T) {
	g := figure1G1(t)
	p := figure1bPartition(t, g)
	// 10 vertices + replicated border copies (s3, s4, t2, t3 appear
	// twice).
	if got := p.StorageVertices(); got != 14 {
		t.Fatalf("StorageVertices = %d, want 14", got)
	}
}

func TestIsEdgeCutRejectsVCut(t *testing.T) {
	g := figure1G1(t)
	p, err := FromEdgeAssignment(g, func(s, d graph.VertexID) int { return int(d) % 2 }, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.IsEdgeCut() {
		t.Fatal("a vertex-cut with split vertices claimed to be an edge-cut")
	}
}
