package partition

import (
	"fmt"

	"adp/internal/graph"
)

// FromVertexAssignment builds the edge-cut partition induced by a
// vertex→fragment assignment: fragment a(v) receives every arc
// incident to v, so every vertex is e-cut at its owner and cut arcs
// are replicated at both endpoint fragments (the classic edge-cut
// layout of Fig. 1(b), with dummy copies at the far ends of cut arcs).
func FromVertexAssignment(g *graph.Graph, assign []int, n int) (*Partition, error) {
	if len(assign) != g.NumVertices() {
		return nil, fmt.Errorf("partition: assignment covers %d of %d vertices", len(assign), g.NumVertices())
	}
	p := NewEmpty(g, n)
	for v := range assign {
		if assign[v] < 0 || assign[v] >= n {
			return nil, fmt.Errorf("partition: vertex %d assigned to fragment %d of %d", v, assign[v], n)
		}
	}
	g.Edges(func(s, d graph.VertexID) bool {
		p.AddArc(assign[s], s, d)
		if assign[d] != assign[s] {
			p.AddArc(assign[d], s, d)
		}
		return true
	})
	// Isolated vertices still need a home.
	for v := 0; v < g.NumVertices(); v++ {
		if g.OutDegree(graph.VertexID(v)) == 0 && g.InDegree(graph.VertexID(v)) == 0 {
			p.AddVertex(assign[v], graph.VertexID(v))
		}
	}
	// Masters and compute owners default to the owner fragment.
	for v := 0; v < g.NumVertices(); v++ {
		if p.frags[assign[v]].Has(graph.VertexID(v)) {
			p.master[v] = int32(assign[v])
		}
		p.owner[v] = int32(assign[v])
	}
	return p, nil
}

// EdgeAssigner maps an edge to its owning fragment. For undirected
// graphs it is consulted once per undirected edge (src < dst) and the
// symmetric arc pair is co-located.
type EdgeAssigner func(src, dst graph.VertexID) int

// FromEdgeAssignment builds the vertex-cut partition induced by an
// edge→fragment assignment: each edge lives in exactly one fragment
// (fe = 1) and vertices are replicated wherever their edges land.
func FromEdgeAssignment(g *graph.Graph, assign EdgeAssigner, n int) (*Partition, error) {
	p := NewEmpty(g, n)
	var err error
	g.Edges(func(s, d graph.VertexID) bool {
		if g.Undirected() && s > d {
			return true
		}
		i := assign(s, d)
		if i < 0 || i >= n {
			err = fmt.Errorf("partition: edge (%d,%d) assigned to fragment %d of %d", s, d, i, n)
			return false
		}
		p.AddEdge(i, s, d)
		return true
	})
	if err != nil {
		return nil, err
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g.OutDegree(graph.VertexID(v)) == 0 && g.InDegree(graph.VertexID(v)) == 0 {
			p.AddVertex(int(graph.VertexID(v))%n, graph.VertexID(v))
		}
	}
	return p, nil
}

// Clone returns a deep copy of the partition sharing only the
// immutable graph. Refiners mutate partitions in place; benchmarks
// clone the baseline first.
func (p *Partition) Clone() *Partition {
	q := &Partition{
		g:      p.g,
		frags:  make([]*Fragment, len(p.frags)),
		copies: make([][]int32, len(p.copies)),
		master: make([]int32, len(p.master)),
	}
	q.owner = make([]int32, len(p.owner))
	copy(q.master, p.master)
	copy(q.owner, p.owner)
	if p.weight != nil {
		q.weight = append([]float64(nil), p.weight...)
	}
	for v, cs := range p.copies {
		q.copies[v] = append([]int32(nil), cs...)
	}
	for i, f := range p.frags {
		if f.frozen() {
			// Frozen fragments share their immutable compiled and
			// compressed forms: a mutation on either clone thaws fresh
			// maps and drops only that clone's pointers, so sharing is
			// safe and cloning a cold partition costs nothing per arc.
			nf := &Fragment{id: i}
			nf.cf.Store(f.cf.Load())
			nf.czf.Store(f.czf.Load())
			q.frags[i] = nf
			continue
		}
		nf := &Fragment{id: i, verts: make(map[graph.VertexID]*Adj, len(f.verts)), arcs: make(map[uint64]struct{}, len(f.arcs))}
		for v, adj := range f.verts {
			nf.verts[v] = &Adj{
				Out: append([]graph.VertexID(nil), adj.Out...),
				In:  append([]graph.VertexID(nil), adj.In...),
			}
		}
		for k := range f.arcs {
			nf.arcs[k] = struct{}{}
		}
		q.frags[i] = nf
	}
	return q
}

// Validate checks the HP(n) invariants of Section 2:
//   - every fragment arc exists in G and endpoint adjacency is
//     consistent with the arc set;
//   - every arc of G is stored by at least one fragment;
//   - every vertex of G has at least one copy;
//   - the copies index is sorted, duplicate-free, in fragment range,
//     and agrees with fragment contents in both directions (which
//     makes border status ⇔ replication ≥ 2 by construction);
//   - the master of every vertex is an in-range fragment holding a
//     real copy, and a single-copy (non-border) vertex is mastered at
//     that sole copy;
//   - the owner hint, when set, is an in-range fragment;
//   - for undirected graphs, symmetric arc pairs are co-located.
//
// Note the paper's Eq. 5 master assignment legitimately selects dummy
// copies (masters coordinate synchronisation, they do not compute), so
// the checker does not forbid dummy masters — empirically most border
// masters of refined edge-cut partitions are dummies.
//
// The engine's recovery tests run Validate after checkpoint rollback
// and after refinement, so recovery bugs surface as invariant
// violations instead of silent cost skew.
func (p *Partition) Validate() error {
	covered := make(map[uint64]bool, p.g.NumEdges())
	for i, f := range p.frags {
		var localArcs int
		var verr error
		f.Vertices(func(v graph.VertexID, adj *Adj) {
			if verr != nil {
				return
			}
			for _, w := range adj.Out {
				if !p.g.HasEdge(v, w) {
					verr = fmt.Errorf("partition: fragment %d stores arc (%d,%d) not in G", i, v, w)
					return
				}
				if !f.HasArc(v, w) {
					verr = fmt.Errorf("partition: fragment %d adjacency/arc-set mismatch at (%d,%d)", i, v, w)
					return
				}
				covered[arcKey(v, w)] = true
				localArcs++
				if p.g.Undirected() && !f.HasArc(w, v) {
					verr = fmt.Errorf("partition: fragment %d splits undirected edge {%d,%d}", i, v, w)
					return
				}
			}
			for _, w := range adj.In {
				if !f.HasArc(w, v) {
					verr = fmt.Errorf("partition: fragment %d in-adjacency lists absent arc (%d,%d)", i, w, v)
					return
				}
			}
			found := false
			for _, c := range p.copies[v] {
				if int(c) == i {
					found = true
					break
				}
			}
			if !found {
				verr = fmt.Errorf("partition: copies index misses vertex %d in fragment %d", v, i)
			}
		})
		if verr != nil {
			return verr
		}
		if localArcs != f.NumArcs() {
			return fmt.Errorf("partition: fragment %d arc count mismatch: adjacency %d, set %d", i, localArcs, f.NumArcs())
		}
	}
	var missing int64
	p.g.Edges(func(s, d graph.VertexID) bool {
		if !covered[arcKey(s, d)] {
			missing++
		}
		return true
	})
	if missing > 0 {
		return fmt.Errorf("partition: %d arcs of G not stored by any fragment", missing)
	}
	for v := 0; v < p.g.NumVertices(); v++ {
		vid := graph.VertexID(v)
		cs := p.copies[v]
		if len(cs) == 0 {
			return fmt.Errorf("partition: vertex %d has no copy", v)
		}
		for k, c := range cs {
			if c < 0 || int(c) >= len(p.frags) {
				return fmt.Errorf("partition: copies index of vertex %d names fragment %d of %d", v, c, len(p.frags))
			}
			if k > 0 && cs[k-1] >= c {
				return fmt.Errorf("partition: copies index of vertex %d not sorted/unique: %v", v, cs)
			}
			if !p.frags[c].Has(vid) {
				return fmt.Errorf("partition: copies index lists fragment %d for vertex %d but the fragment has no copy", c, v)
			}
		}
		if p.IsBorder(vid) != (p.Replication(vid) >= 1) {
			return fmt.Errorf("partition: vertex %d border/replication mismatch: %d copies, r=%d", v, len(cs), p.Replication(vid))
		}
		m := p.master[v]
		if m < 0 || int(m) >= len(p.frags) || !p.frags[m].Has(vid) {
			return fmt.Errorf("partition: master of %d is fragment %d which holds no copy", v, m)
		}
		if len(cs) == 1 && m != cs[0] {
			return fmt.Errorf("partition: non-border vertex %d mastered at %d, sole copy at %d", v, m, cs[0])
		}
		if o := p.owner[v]; o < -1 || int(o) >= len(p.frags) {
			return fmt.Errorf("partition: owner of %d is fragment %d of %d", v, o, len(p.frags))
		}
	}
	return nil
}
