// Package prof wires the standard runtime/pprof CPU and heap profiles
// into the CLI binaries (adpart, adbench), so refinement and engine
// hot paths can be profiled end to end without a test harness.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpuPath is non-empty and returns a
// stop function that finishes the CPU profile and, when memPath is
// non-empty, captures a heap profile after a final GC. The stop
// function is safe to call once on any exit path; note that os.Exit
// bypasses deferred calls, so error paths that must still produce
// profiles should call it explicitly.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				return
			}
			runtime.GC() // materialise final live-heap state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
			}
			f.Close()
		}
	}, nil
}
