package replica

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"adp/internal/composite"
	"adp/internal/fault"
	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/partitioner"
	"adp/internal/store"
	"adp/internal/testutil"
)

// testGraph rebuilds the deterministic replication test graph; two
// builds are identical, so offline oracles replay state exactly.
func testGraph() *graph.Graph {
	return gen.PowerLaw(gen.PowerLawConfig{N: 300, AvgDeg: 5, Exponent: 2.2, Directed: false, Seed: 41})
}

func testComposite(t testing.TB, g *graph.Graph) *composite.Composite {
	t.Helper()
	p1, err := partitioner.HashEdgeCut(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = (v + 1) % 3
	}
	p2, err := partition.FromVertexAssignment(g, assign, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := composite.New(g, []*partition.Partition{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// genMuts derives n seeded mutations with explicit destination vectors
// against c's current edge set (mutating a clone as it goes, so a
// later call with the advanced composite continues the stream).
func genMuts(t testing.TB, g *graph.Graph, c *composite.Composite, n int, seed int64) []store.Mutation {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nv := uint32(g.NumVertices())
	live := map[uint64]bool{}
	p := c.Partition(0)
	for i := 0; i < p.NumFragments(); i++ {
		p.Fragment(i).Vertices(func(v graph.VertexID, adj *partition.Adj) {
			for _, w := range adj.Out {
				live[uint64(v)<<32|uint64(w)] = true
			}
		})
	}
	var liveList []uint64
	for k := range live {
		liveList = append(liveList, k)
	}
	for i := 1; i < len(liveList); i++ {
		for j := i; j > 0 && liveList[j] < liveList[j-1]; j-- {
			liveList[j], liveList[j-1] = liveList[j-1], liveList[j]
		}
	}
	muts := make([]store.Mutation, 0, n)
	for len(muts) < n {
		if rng.Intn(3) == 0 && len(liveList) > 0 {
			i := rng.Intn(len(liveList))
			k := liveList[i]
			liveList[i] = liveList[len(liveList)-1]
			liveList = liveList[:len(liveList)-1]
			delete(live, k)
			muts = append(muts, store.Mutation{Kind: store.MutDelete, U: graph.VertexID(k >> 32), V: graph.VertexID(uint32(k))})
			continue
		}
		u, v := rng.Uint32()%nv, rng.Uint32()%nv
		if u == v || live[uint64(u)<<32|uint64(v)] {
			continue
		}
		dest := make([]int, c.K())
		for j := range dest {
			dest[j] = rng.Intn(c.N())
		}
		live[uint64(u)<<32|uint64(v)] = true
		muts = append(muts, store.Mutation{Kind: store.MutInsert, U: graph.VertexID(u), V: graph.VertexID(v), Dest: dest})
	}
	return muts
}

// applyBatches feeds muts to the leader in commit-terminated chunks.
func applyBatches(t testing.TB, st *store.Store, muts []store.Mutation, chunk int) {
	t.Helper()
	for i := 0; i < len(muts); i += chunk {
		end := i + chunk
		if end > len(muts) {
			end = len(muts)
		}
		batch := append(muts[i:end:end], store.Mutation{Kind: store.MutCommit})
		if _, _, err := st.Apply(batch); err != nil {
			t.Fatal(err)
		}
	}
}

func newLeaderStore(t testing.TB, opts store.Options) (*graph.Graph, *store.Store) {
	t.Helper()
	g := testGraph()
	st, err := store.Create(t.TempDir()+"/leader", testComposite(t, g), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return g, st
}

// waitCaughtUp polls until the follower's durable watermark reaches
// target.
func waitCaughtUp(t testing.TB, f *Follower, target uint64, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for f.Applied() < target {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at lsn %d, want %d (stats %+v, err %v)", f.Applied(), target, f.Stats(), f.Err())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLeaderHandle(t *testing.T) {
	g, st := newLeaderStore(t, store.Options{})
	applyBatches(t, st, genMuts(t, g, st.Composite().Clone(), 30, 3), 10)
	committed := st.CommittedLSN()
	ld := NewLeader(st, LeaderConfig{})

	if resp := ld.Handle(&Message{Type: MsgError}); resp.Type != MsgError || resp.ErrCode != ErrCodeBadRequest {
		t.Fatalf("reply to error message: %+v", resp)
	}
	if resp := ld.Handle(&Message{Type: MsgPull, Applied: committed + 5}); resp.Type != MsgError || resp.ErrCode != ErrCodeDiverged {
		t.Fatalf("diverged pull answered %+v", resp)
	}
	// Caught up: an empty frames reply carrying the watermark.
	if resp := ld.Handle(&Message{Type: MsgPull, Applied: committed, ID: "a"}); resp.Type != MsgFrames || len(resp.Frames) != 0 || resp.Committed != committed {
		t.Fatalf("caught-up pull answered %+v", resp)
	}
	// A pull from 0 streams from LSN 1; Max is a soft cap rounded up to
	// the commit boundary so the puller always completes a batch.
	resp := ld.Handle(&Message{Type: MsgPull, Applied: 0, Max: 1, ID: "b"})
	if resp.Type != MsgFrames || len(resp.Frames) == 0 {
		t.Fatalf("pull from 0 answered %+v", resp)
	}
	if first, last := resp.Frames[0], resp.Frames[len(resp.Frames)-1]; first.LSN != 1 || last.LSN > committed {
		t.Fatalf("pull from 0 spans [%d,%d], watermark %d", first.LSN, last.LSN, committed)
	}
	// The bootstrap path serves the newest snapshot.
	if resp := ld.Handle(&Message{Type: MsgSnapReq}); resp.Type != MsgSnapshot || len(resp.Snapshot) == 0 {
		t.Fatalf("snapreq answered %+v", resp)
	}
	// Watermarks reflect the Applied each ID advertised.
	wm := ld.Watermarks()
	if wm["a"] != committed || wm["b"] != 0 {
		t.Fatalf("watermarks %v, want a=%d b=0", wm, committed)
	}

	// WaitDurable on a fresh leader with no follower history: disabled
	// below 1 follower, satisfied once a pull advertises the LSN, and
	// ctx-bounded otherwise.
	ld2 := NewLeader(st, LeaderConfig{})
	if err := ld2.WaitDurable(context.Background(), committed, 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := ld2.WaitDurable(ctx, committed, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("unreplicated WaitDurable returned %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- ld2.WaitDurable(context.Background(), committed, 1) }()
	ld2.Handle(&Message{Type: MsgPull, Applied: committed, ID: "b"})
	if err := <-done; err != nil {
		t.Fatalf("WaitDurable after advance: %v", err)
	}
}

// TestPipeCatchUpChaos is the transport-level chaos proof: a follower
// pulling over a pipe with seeded drop/dup/reorder/delay/partition
// faults on BOTH directions, plus fsync faults on its own disk,
// converges to the leader's exact committed state, and a reopen of its
// directory recovers that state bit-for-bit.
func TestPipeCatchUpChaos(t *testing.T) {
	g, st := newLeaderStore(t, store.Options{})
	muts := genMuts(t, g, st.Composite().Clone(), 200, 5)
	applyBatches(t, st, muts[:100], 10)

	ld := NewLeader(st, LeaderConfig{Logf: t.Logf})
	pipe := NewPipe(ld,
		fault.NewNetInjector(fault.RandomNet(21, 30, 150, 2*time.Millisecond)...),
		fault.NewNetInjector(fault.RandomNet(22, 30, 150, 2*time.Millisecond)...),
	)
	defer pipe.Close()

	dirF := t.TempDir() + "/follower"
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	diskInj := fault.NewDiskInjector(
		fault.DiskEvent{Kind: fault.SyncErr, N: 5},
		fault.DiskEvent{Kind: fault.SyncErr, N: 9},
	)
	fst, err := Bootstrap(ctx, pipe.Dialer(), dirF, g, store.Options{Injector: diskInj})
	if err != nil {
		t.Fatal(err)
	}
	defer fst.Close()

	pump := NewFollower(&StoreApplier{St: fst}, FollowerConfig{
		ID:           "chaos-1",
		Dial:         pipe.Dialer(),
		PullTimeout:  50 * time.Millisecond,
		PollInterval: time.Millisecond,
		BackoffBase:  time.Millisecond,
		BackoffCap:   20 * time.Millisecond,
		Seed:         99,
		MaxFrames:    7,
		Logf:         t.Logf,
	})
	pump.Start()
	defer pump.Stop()

	// Keep writing while the follower chases through the chaos window.
	applyBatches(t, st, muts[100:], 10)
	waitCaughtUp(t, pump, st.CommittedLSN(), 20*time.Second)
	pump.Stop()

	if err := fst.Composite().EqualState(st.Composite()); err != nil {
		t.Fatalf("follower diverged: %v", err)
	}
	stats := pump.Stats()
	if stats.Pulls == 0 || stats.Frames == 0 {
		t.Fatalf("implausible pump stats %+v", stats)
	}

	wm := fst.CommittedLSN()
	if err := fst.Close(); err != nil {
		t.Fatal(err)
	}
	re, info, err := store.Open(dirF, g, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if info.Damage != nil {
		t.Fatalf("follower reopen found damage: %v", info)
	}
	if re.CommittedLSN() != wm {
		t.Fatalf("reopened watermark %d, want %d", re.CommittedLSN(), wm)
	}
	if err := re.Composite().EqualState(st.Composite()); err != nil {
		t.Fatalf("reopened follower diverged: %v", err)
	}
}

// TestFailoverNoAckedLoss kills the leader mid-stream and promotes the
// follower: every write acked as replicated (WaitDurable) survives
// promotion bitwise, the ambiguity is confined to the unacked tail,
// and the promoted node accepts and durably commits its own writes.
func TestFailoverNoAckedLoss(t *testing.T) {
	g, st := newLeaderStore(t, store.Options{})
	muts := genMuts(t, g, st.Composite().Clone(), 150, 7)

	ld := NewLeader(st, LeaderConfig{Logf: t.Logf})
	pipe := NewPipe(ld, nil, nil)
	defer pipe.Close()

	dirF := t.TempDir() + "/follower"
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fst, err := Bootstrap(ctx, pipe.Dialer(), dirF, g, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fst.Close()
	pump := NewFollower(&StoreApplier{St: fst}, FollowerConfig{
		ID:           "failover-1",
		Dial:         pipe.Dialer(),
		PullTimeout:  50 * time.Millisecond,
		PollInterval: time.Millisecond,
		BackoffBase:  time.Millisecond,
		Seed:         3,
		Logf:         t.Logf,
	})
	pump.Start()

	// Acked writes: applied AND confirmed replicated via WaitDurable.
	applyBatches(t, st, muts[:100], 10)
	ackedLSN := st.CommittedLSN()
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := ld.WaitDurable(wctx, ackedLSN, 1); err != nil {
		t.Fatalf("acked writes never replicated: %v", err)
	}
	wcancel()
	ackedState := st.Composite().Clone()

	// One more batch with NO replication ack, then the leader dies with
	// the pipe: its fate is ambiguous by design.
	applyBatches(t, st, muts[100:], 50)
	unackedLSN := st.CommittedLSN()
	pipe.Close()

	// Operator-triggered failover.
	if err := pump.Promote(); err != nil {
		t.Fatal(err)
	}
	if !pump.Promoted() {
		t.Fatal("promoted follower does not report Promoted")
	}
	if err := pump.Promote(); err != nil {
		t.Fatalf("second promote not idempotent: %v", err)
	}

	got := fst.CommittedLSN()
	if got < ackedLSN {
		t.Fatalf("promotion lost acked writes: watermark %d < acked %d", got, ackedLSN)
	}
	switch {
	case got == ackedLSN:
		if err := fst.Composite().EqualState(ackedState); err != nil {
			t.Fatalf("promoted state diverged from acked prefix: %v", err)
		}
	case got == unackedLSN:
		if err := fst.Composite().EqualState(st.Composite()); err != nil {
			t.Fatalf("promoted state diverged from full prefix: %v", err)
		}
	default:
		t.Fatalf("promoted watermark %d matches neither acked %d nor unacked %d", got, ackedLSN, unackedLSN)
	}

	// The new leader accepts its own writes past the fence.
	own := genMuts(t, g, fst.Composite().Clone(), 20, 9)
	applyBatches(t, fst, own, 10)
	if fst.CommittedLSN() <= got {
		t.Fatal("own writes did not advance the promoted watermark")
	}

	// And the whole history — replicated prefix plus own writes —
	// survives a restart of the promoted node.
	want := fst.Composite().Clone()
	wm := fst.CommittedLSN()
	if err := fst.Close(); err != nil {
		t.Fatal(err)
	}
	re, info, err := store.Open(dirF, g, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if info.Damage != nil {
		t.Fatalf("promoted reopen found damage: %v", info)
	}
	if re.CommittedLSN() != wm {
		t.Fatalf("promoted reopen watermark %d, want %d", re.CommittedLSN(), wm)
	}
	if err := re.Composite().EqualState(want); err != nil {
		t.Fatalf("promoted reopen diverged: %v", err)
	}
}

// TestLeaseAutoPromote proves the lease failover: once the leader goes
// silent longer than the lease, the pump promotes itself, reports
// ErrPromoted, and the store accepts writes.
func TestLeaseAutoPromote(t *testing.T) {
	g, st := newLeaderStore(t, store.Options{})
	applyBatches(t, st, genMuts(t, g, st.Composite().Clone(), 40, 11), 10)

	ld := NewLeader(st, LeaderConfig{})
	pipe := NewPipe(ld, nil, nil)
	defer pipe.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	dirF := t.TempDir() + "/follower"
	fst, err := Bootstrap(ctx, pipe.Dialer(), dirF, g, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fst.Close()
	pump := NewFollower(&StoreApplier{St: fst}, FollowerConfig{
		ID:           "lease-1",
		Dial:         pipe.Dialer(),
		PullTimeout:  20 * time.Millisecond,
		PollInterval: time.Millisecond,
		BackoffBase:  time.Millisecond,
		Seed:         5,
		Lease:        150 * time.Millisecond,
		Logf:         t.Logf,
	})
	pump.Start()
	defer pump.Stop()
	waitCaughtUp(t, pump, st.CommittedLSN(), 10*time.Second)

	// Leader dies; the lease runs out; the pump promotes itself.
	pipe.Close()
	deadline := time.Now().Add(10 * time.Second)
	for !pump.Promoted() {
		if time.Now().After(deadline) {
			t.Fatalf("lease expiry never promoted (stats %+v, err %v)", pump.Stats(), pump.Err())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := pump.Err(); !errors.Is(err, ErrPromoted) {
		t.Fatalf("pump stopped with %v, want ErrPromoted", err)
	}
	if err := fst.Composite().EqualState(st.Composite()); err != nil {
		t.Fatalf("auto-promoted state diverged: %v", err)
	}
	own := genMuts(t, g, fst.Composite().Clone(), 10, 13)
	applyBatches(t, fst, own, 10)
}

// TestSnapshotReBase drives a follower so far behind that the leader
// compacts past it: the pull protocol answers with a snapshot, the
// follower re-bases and keeps streaming.
func TestSnapshotReBase(t *testing.T) {
	g, st := newLeaderStore(t, store.Options{SnapshotEvery: 30})
	ld := NewLeader(st, LeaderConfig{})
	pipe := NewPipe(ld, nil, nil)
	defer pipe.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	dirF := t.TempDir() + "/follower"
	fst, err := Bootstrap(ctx, pipe.Dialer(), dirF, g, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fst.Close()

	// Leader advances and compacts while the follower is not pulling.
	applyBatches(t, st, genMuts(t, g, st.Composite().Clone(), 120, 17), 10)

	pump := NewFollower(&StoreApplier{St: fst}, FollowerConfig{
		ID:           "rebase-1",
		Dial:         pipe.Dialer(),
		PullTimeout:  50 * time.Millisecond,
		PollInterval: time.Millisecond,
		BackoffBase:  time.Millisecond,
		Seed:         7,
		Logf:         t.Logf,
	})
	pump.Start()
	defer pump.Stop()
	waitCaughtUp(t, pump, st.CommittedLSN(), 20*time.Second)
	pump.Stop()

	if pump.Stats().Snapshots == 0 {
		t.Fatalf("catch-up never installed a snapshot: %+v", pump.Stats())
	}
	if err := fst.Composite().EqualState(st.Composite()); err != nil {
		t.Fatalf("re-based follower diverged: %v", err)
	}
}

// TestTCPCatchUp runs the real transport end to end: leader serving on
// a loopback listener, follower dialing with TCPDialer, clean
// convergence, and no goroutines left behind after teardown.
func TestTCPCatchUp(t *testing.T) {
	base := testutil.GoroutineBaseline()
	g, st := newLeaderStore(t, store.Options{})
	muts := genMuts(t, g, st.Composite().Clone(), 100, 19)
	applyBatches(t, st, muts[:50], 10)

	ld := NewLeader(st, LeaderConfig{Logf: t.Logf})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		ld.Serve(ln)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	dirF := t.TempDir() + "/follower"
	fst, err := Bootstrap(ctx, TCPDialer(ln.Addr().String()), dirF, g, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fst.Close()
	pump := NewFollower(&StoreApplier{St: fst}, FollowerConfig{
		ID:           "tcp-1",
		Dial:         TCPDialer(ln.Addr().String()),
		PullTimeout:  200 * time.Millisecond,
		PollInterval: time.Millisecond,
		BackoffBase:  time.Millisecond,
		Seed:         23,
		Logf:         t.Logf,
	})
	pump.Start()
	applyBatches(t, st, muts[50:], 10)
	waitCaughtUp(t, pump, st.CommittedLSN(), 20*time.Second)
	pump.Stop()

	if err := fst.Composite().EqualState(st.Composite()); err != nil {
		t.Fatalf("TCP follower diverged: %v", err)
	}
	wm := ld.Watermarks()
	if wm["tcp-1"] != st.CommittedLSN() {
		t.Fatalf("leader watermark table %v, want tcp-1=%d", wm, st.CommittedLSN())
	}

	ln.Close()
	ld.Close()
	<-serveDone
	testutil.CheckGoroutines(t, base, 2)
}
