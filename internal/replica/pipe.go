package replica

import (
	"context"
	"errors"
	"sync"
	"time"

	"adp/internal/fault"
)

// The in-process transport models the replication link as two lossy
// message queues (follower→leader requests, leader→follower replies),
// each threading a fault.NetInjector. Queue semantics — not strict
// RPC — are deliberate: a duplicated request produces an extra reply
// that a later Pull consumes as a stale answer, a dropped reply times
// out the Pull that waited for it, and a reordered reply pairs with
// the wrong request. The pull-from-durable-watermark protocol must
// treat all of that as idempotent noise, and the chaos suite proves it
// does.

// pipeQueue is one direction of the link.
type pipeQueue struct {
	inj *fault.NetInjector
	ch  chan []byte

	mu   sync.Mutex
	held [][]byte // reorder holds, flushed after the next delivery
}

func newPipeQueue(inj *fault.NetInjector) *pipeQueue {
	return &pipeQueue{inj: inj, ch: make(chan []byte, 1024)}
}

// send applies the injector's plan for this message. Best-effort: a
// full queue drops the message (the protocol re-requests).
func (q *pipeQueue) send(msg []byte) {
	act := q.inj.Plan()
	if act.Drop {
		return
	}
	if act.Hold {
		q.mu.Lock()
		q.held = append(q.held, msg)
		q.mu.Unlock()
		return
	}
	deliver := func() {
		q.push(msg)
		if act.Dup {
			q.push(msg)
		}
		q.mu.Lock()
		held := q.held
		q.held = nil
		q.mu.Unlock()
		for _, h := range held {
			q.push(h)
		}
	}
	if act.Delay > 0 {
		time.AfterFunc(act.Delay, deliver)
		return
	}
	deliver()
}

func (q *pipeQueue) push(m []byte) {
	select {
	case q.ch <- m:
	default:
	}
}

func (q *pipeQueue) recv(ctx context.Context) ([]byte, error) {
	select {
	case m := <-q.ch:
		return m, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Pipe is an in-process leader endpoint for tests and benches: a
// goroutine drains the request queue through Leader.Handle and pushes
// replies onto the reply queue, with independent injectors on each
// direction.
type Pipe struct {
	leader *Leader
	reqs   *pipeQueue
	resps  *pipeQueue
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
}

// NewPipe starts the leader-side pump. reqInj faults the
// follower→leader direction, respInj the reverse; either may be nil.
func NewPipe(l *Leader, reqInj, respInj *fault.NetInjector) *Pipe {
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pipe{
		leader: l,
		reqs:   newPipeQueue(reqInj),
		resps:  newPipeQueue(respInj),
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
	}
	go p.run()
	return p
}

func (p *Pipe) run() {
	defer close(p.done)
	for {
		raw, err := p.reqs.recv(p.ctx)
		if err != nil {
			return
		}
		req, derr := DecodeMessage(raw)
		var resp *Message
		if derr != nil {
			resp = &Message{Type: MsgError, ErrCode: ErrCodeBadRequest, ErrMsg: derr.Error()}
		} else {
			resp = p.leader.Handle(req)
		}
		p.resps.send(EncodeMessage(resp))
	}
}

// Close kills the leader-side pump; in-flight and future Pulls time
// out, exactly like a dead leader.
func (p *Pipe) Close() {
	p.cancel()
	<-p.done
}

// Dialer returns a Dialer producing connections over this pipe.
func (p *Pipe) Dialer() Dialer {
	return func(ctx context.Context) (Conn, error) {
		if p.ctx.Err() != nil {
			// Match a TCP dial against a dead listener.
			return nil, errors.New("replica: pipe closed")
		}
		return &pipeConn{p: p}, nil
	}
}

type pipeConn struct{ p *Pipe }

// Pull enqueues the request and waits for the next reply on the link —
// which, under duplication or reordering, may answer an earlier
// request; the puller's idempotent apply absorbs that.
func (c *pipeConn) Pull(ctx context.Context, req *Message) (*Message, error) {
	c.p.reqs.send(EncodeMessage(req))
	raw, err := c.p.resps.recv(ctx)
	if err != nil {
		return nil, err
	}
	return DecodeMessage(raw)
}

func (c *pipeConn) Close() error { return nil }
