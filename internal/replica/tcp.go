package replica

import (
	"bufio"
	"context"
	"net"
	"time"
)

// TCPDialer produces connections to a leader's replication listener
// (Leader.Serve). Each Pull is a strict request/response with the
// ctx deadline applied to the socket; any error closes the connection
// and the pump redials.
func TCPDialer(addr string) Dialer {
	return func(ctx context.Context) (Conn, error) {
		d := net.Dialer{}
		c, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		return &tcpConn{c: c, br: bufio.NewReader(c)}, nil
	}
}

type tcpConn struct {
	c  net.Conn
	br *bufio.Reader
}

func (t *tcpConn) Pull(ctx context.Context, req *Message) (*Message, error) {
	dl, ok := ctx.Deadline()
	if !ok {
		dl = time.Now().Add(time.Minute)
	}
	if err := t.c.SetDeadline(dl); err != nil {
		return nil, err
	}
	if _, err := t.c.Write(EncodeMessage(req)); err != nil {
		return nil, err
	}
	return readMessage(t.br)
}

func (t *tcpConn) Close() error { return t.c.Close() }
