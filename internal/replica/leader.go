package replica

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"adp/internal/store"
)

// LeaderConfig tunes the frame-serving side.
type LeaderConfig struct {
	// MaxFrames caps frames per reply (default 4096); a follower's pull
	// may ask for less.
	MaxFrames int
	// Logf receives serving diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

func (c LeaderConfig) maxFrames() int {
	if c.MaxFrames <= 0 {
		return 4096
	}
	return c.MaxFrames
}

func (c LeaderConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Leader serves committed WAL frames to followers and tracks their
// durably-applied watermarks. It reads the store only through the
// concurrency-safe tailing APIs (TailFrom, NewestSnapshot,
// CommittedLSN), so it can run next to the store's single writer. Safe
// for concurrent use.
type Leader struct {
	st  *store.Store
	cfg LeaderConfig

	mu        sync.Mutex
	followers map[string]uint64
	advance   chan struct{} // closed+replaced whenever a watermark moves
	conns     map[net.Conn]struct{}
	closed    bool

	wg sync.WaitGroup
}

// NewLeader wraps st for frame serving.
func NewLeader(st *store.Store, cfg LeaderConfig) *Leader {
	return &Leader{
		st:        st,
		cfg:       cfg,
		followers: make(map[string]uint64),
		advance:   make(chan struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
}

// Handle answers one follower message. It never returns nil: protocol
// problems come back as MsgError replies.
func (l *Leader) Handle(req *Message) *Message {
	switch req.Type {
	case MsgSnapReq:
		return l.snapshotReply()
	case MsgPull:
	default:
		return &Message{Type: MsgError, ErrCode: ErrCodeBadRequest,
			ErrMsg: fmt.Sprintf("unexpected message type %s", req.Type)}
	}
	if req.ID != "" {
		l.observe(req.ID, req.Applied)
	}
	committed := l.st.CommittedLSN()
	if req.Applied > committed {
		return &Message{Type: MsgError, ErrCode: ErrCodeDiverged,
			ErrMsg: fmt.Sprintf("follower applied lsn %d beyond leader committed %d", req.Applied, committed)}
	}
	if req.Applied == committed {
		return &Message{Type: MsgFrames, Committed: committed}
	}
	max := l.cfg.maxFrames()
	if req.Max > 0 && int(req.Max) < max {
		max = int(req.Max)
	}
	frames, committed, err := l.st.TailFrom(req.Applied+1, max)
	if errors.Is(err, store.ErrCompacted) {
		return l.snapshotReply()
	}
	if err != nil {
		l.cfg.logf("replica: leader tail from %d: %v", req.Applied+1, err)
		return &Message{Type: MsgError, ErrCode: ErrCodeInternal, ErrMsg: err.Error()}
	}
	return &Message{Type: MsgFrames, Committed: committed, Frames: frames}
}

func (l *Leader) snapshotReply() *Message {
	lsn, data, err := l.st.NewestSnapshot()
	if err != nil {
		l.cfg.logf("replica: leader snapshot read: %v", err)
		return &Message{Type: MsgError, ErrCode: ErrCodeInternal, ErrMsg: err.Error()}
	}
	return &Message{Type: MsgSnapshot, SnapLSN: lsn, Snapshot: data}
}

// observe records a follower's durably-applied watermark and wakes
// WaitDurable waiters when it advances.
func (l *Leader) observe(id string, applied uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	old, seen := l.followers[id]
	if !seen || applied > old {
		l.followers[id] = applied
		close(l.advance)
		l.advance = make(chan struct{})
	}
}

// Watermarks snapshots every follower's durably-applied LSN.
func (l *Leader) Watermarks() map[string]uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]uint64, len(l.followers))
	for id, lsn := range l.followers {
		out[id] = lsn
	}
	return out
}

// WaitDurable blocks until at least minFollowers followers have
// durably applied lsn, or ctx ends. minFollowers < 1 returns
// immediately — replication acks disabled.
func (l *Leader) WaitDurable(ctx context.Context, lsn uint64, minFollowers int) error {
	if minFollowers < 1 {
		return nil
	}
	for {
		l.mu.Lock()
		n := 0
		for _, a := range l.followers {
			if a >= lsn {
				n++
			}
		}
		ch := l.advance
		l.mu.Unlock()
		if n >= minFollowers {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Serve accepts follower connections on ln until Close (or a listener
// error). Each connection runs a strict request/response loop; a read
// or write error closes just that connection (the follower redials).
func (l *Leader) Serve(ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			c.Close()
			return
		}
		l.conns[c] = struct{}{}
		l.mu.Unlock()
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			l.serveConn(c)
		}()
	}
}

func (l *Leader) serveConn(c net.Conn) {
	defer func() {
		c.Close()
		l.mu.Lock()
		delete(l.conns, c)
		l.mu.Unlock()
	}()
	br := bufio.NewReader(c)
	for {
		req, err := readMessage(br)
		if err != nil {
			if err != io.EOF {
				l.cfg.logf("replica: leader read from %s: %v", c.RemoteAddr(), err)
			}
			return
		}
		if _, err := c.Write(EncodeMessage(l.Handle(req))); err != nil {
			l.cfg.logf("replica: leader write to %s: %v", c.RemoteAddr(), err)
			return
		}
	}
}

// Close stops serving: open connections are closed and their loops
// reaped. The store is left alone.
func (l *Leader) Close() {
	l.mu.Lock()
	l.closed = true
	for c := range l.conns {
		c.Close()
	}
	l.mu.Unlock()
	l.wg.Wait()
}

// readMessage reads one wire message from r.
func readMessage(r io.Reader) (*Message, error) {
	var hdr [wireHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	buf := append([]byte(nil), hdr[:]...)
	blen := uint32(hdr[5]) | uint32(hdr[6])<<8 | uint32(hdr[7])<<16 | uint32(hdr[8])<<24
	if blen > maxWireBody {
		return nil, fmt.Errorf("replica: implausible body length %d", blen)
	}
	buf = append(buf, make([]byte, blen)...)
	if _, err := io.ReadFull(r, buf[wireHdrLen:]); err != nil {
		return nil, err
	}
	return DecodeMessage(buf)
}
