// Package replica ships the store's WAL to followers: a leader serves
// committed frames by LSN (pull-based), each follower replays them
// into its own durable store and advertises an applied-LSN watermark
// for bounded-staleness reads. The transport is a narrow seam — an
// in-process pipe threading fault.NetInjector for deterministic chaos
// tests, or TCP for real deployments — and every message is idempotent
// by construction: followers pull from their own durable watermark, so
// duplicated, reordered or re-sent frames are LSN-skipped no-ops. See
// DESIGN.md, "Replication".
package replica

import (
	"encoding/binary"
	"errors"
	"fmt"

	"adp/internal/store"
)

// Wire format (all little-endian). One message:
//
//	[wireMagic u32][type u8][bodyLen u32][body]
//
// Bodies by type:
//
//	MsgPull      [applied u64][max u32][idLen u8][id]
//	MsgSnapReq   (empty) — bootstrap: send me your newest snapshot
//	MsgFrames    [committed u64][count u32] then count ×
//	             [lsn u64][kind u8][bodyLen u32][frame body]
//	MsgSnapshot  [lsn u64][dataLen u32][data]
//	MsgError     [code u8][msgLen u32][msg]
//
// The frame bodies are the leader's WAL payload bodies verbatim; the
// follower re-frames them through the store's appendFrame, which
// reproduces the leader's on-disk bytes bit-for-bit.

const (
	wireMagic   = uint32(0xAD9A_0010)
	wireHdrLen  = 9
	maxWireBody = 1 << 30 // snapshots dominate; frames are tiny
	maxWireID   = 255
)

// MsgType enumerates replication messages.
type MsgType uint8

const (
	MsgPull MsgType = iota + 1
	MsgSnapReq
	MsgFrames
	MsgSnapshot
	MsgError
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgPull:
		return "pull"
	case MsgSnapReq:
		return "snapreq"
	case MsgFrames:
		return "frames"
	case MsgSnapshot:
		return "snapshot"
	case MsgError:
		return "error"
	}
	return "invalid"
}

// Error codes carried by MsgError.
const (
	// ErrCodeDiverged: the follower's applied LSN is beyond the leader's
	// committed watermark — it replicated from a different history (a
	// stale ex-leader) and must be re-bootstrapped by an operator.
	ErrCodeDiverged = uint8(1)
	// ErrCodeBadRequest: the leader could not make sense of the message.
	ErrCodeBadRequest = uint8(2)
	// ErrCodeInternal: the leader failed to read its own log/snapshot.
	ErrCodeInternal = uint8(3)
)

// ErrDiverged is the follower-side sentinel for ErrCodeDiverged.
var ErrDiverged = errors.New("replica: follower history diverged from leader; re-bootstrap required")

// Message is one decoded replication message (a union over the types).
type Message struct {
	Type MsgType

	// MsgPull
	Applied uint64
	Max     uint32
	ID      string

	// MsgFrames
	Committed uint64
	Frames    []store.RawFrame

	// MsgSnapshot
	SnapLSN  uint64
	Snapshot []byte

	// MsgError
	ErrCode uint8
	ErrMsg  string
}

// EncodeMessage renders m as one wire message.
func EncodeMessage(m *Message) []byte {
	var body []byte
	switch m.Type {
	case MsgPull:
		id := m.ID
		if len(id) > maxWireID {
			id = id[:maxWireID]
		}
		body = make([]byte, 13, 13+len(id))
		binary.LittleEndian.PutUint64(body, m.Applied)
		binary.LittleEndian.PutUint32(body[8:], m.Max)
		body[12] = byte(len(id))
		body = append(body, id...)
	case MsgSnapReq:
	case MsgFrames:
		n := 12
		for _, f := range m.Frames {
			n += 13 + len(f.Body)
		}
		body = make([]byte, 12, n)
		binary.LittleEndian.PutUint64(body, m.Committed)
		binary.LittleEndian.PutUint32(body[8:], uint32(len(m.Frames)))
		var hdr [13]byte
		for _, f := range m.Frames {
			binary.LittleEndian.PutUint64(hdr[:], f.LSN)
			hdr[8] = f.Kind
			binary.LittleEndian.PutUint32(hdr[9:], uint32(len(f.Body)))
			body = append(body, hdr[:]...)
			body = append(body, f.Body...)
		}
	case MsgSnapshot:
		body = make([]byte, 12, 12+len(m.Snapshot))
		binary.LittleEndian.PutUint64(body, m.SnapLSN)
		binary.LittleEndian.PutUint32(body[8:], uint32(len(m.Snapshot)))
		body = append(body, m.Snapshot...)
	case MsgError:
		body = make([]byte, 5, 5+len(m.ErrMsg))
		body[0] = m.ErrCode
		binary.LittleEndian.PutUint32(body[1:], uint32(len(m.ErrMsg)))
		body = append(body, m.ErrMsg...)
	}
	out := make([]byte, wireHdrLen, wireHdrLen+len(body))
	binary.LittleEndian.PutUint32(out, wireMagic)
	out[4] = byte(m.Type)
	binary.LittleEndian.PutUint32(out[5:], uint32(len(body)))
	return append(out, body...)
}

// DecodeMessage parses exactly one wire message. It never panics on
// malformed input (FuzzReplicationFrame pins this) and never
// over-allocates beyond the input length.
func DecodeMessage(data []byte) (*Message, error) {
	if len(data) < wireHdrLen {
		return nil, fmt.Errorf("replica: message too short (%d bytes)", len(data))
	}
	if binary.LittleEndian.Uint32(data) != wireMagic {
		return nil, errors.New("replica: bad magic")
	}
	typ := MsgType(data[4])
	blen := binary.LittleEndian.Uint32(data[5:])
	if blen > maxWireBody {
		return nil, fmt.Errorf("replica: implausible body length %d", blen)
	}
	if uint64(len(data)) != uint64(wireHdrLen)+uint64(blen) {
		return nil, fmt.Errorf("replica: message is %d bytes, header declares %d", len(data), wireHdrLen+int(blen))
	}
	return decodeBody(typ, data[wireHdrLen:])
}

func decodeBody(typ MsgType, body []byte) (*Message, error) {
	m := &Message{Type: typ}
	switch typ {
	case MsgPull:
		if len(body) < 13 {
			return nil, fmt.Errorf("replica: pull body is %d bytes, want >= 13", len(body))
		}
		m.Applied = binary.LittleEndian.Uint64(body)
		m.Max = binary.LittleEndian.Uint32(body[8:])
		idLen := int(body[12])
		if len(body) != 13+idLen {
			return nil, fmt.Errorf("replica: pull body is %d bytes, id declares %d", len(body), idLen)
		}
		m.ID = string(body[13:])
	case MsgSnapReq:
		if len(body) != 0 {
			return nil, fmt.Errorf("replica: snapreq body is %d bytes, want 0", len(body))
		}
	case MsgFrames:
		if len(body) < 12 {
			return nil, fmt.Errorf("replica: frames body is %d bytes, want >= 12", len(body))
		}
		m.Committed = binary.LittleEndian.Uint64(body)
		count := binary.LittleEndian.Uint32(body[8:])
		// A frame costs at least 13 bytes on the wire; reject counts the
		// body cannot hold before allocating.
		if uint64(count)*13 > uint64(len(body)-12) {
			return nil, fmt.Errorf("replica: %d frames cannot fit in %d body bytes", count, len(body))
		}
		off := 12
		m.Frames = make([]store.RawFrame, 0, count)
		for i := uint32(0); i < count; i++ {
			if len(body)-off < 13 {
				return nil, fmt.Errorf("replica: torn frame header at offset %d", off)
			}
			f := store.RawFrame{
				LSN:  binary.LittleEndian.Uint64(body[off:]),
				Kind: body[off+8],
			}
			fl := binary.LittleEndian.Uint32(body[off+9:])
			off += 13
			if fl > 1<<16 {
				return nil, fmt.Errorf("replica: implausible frame body length %d", fl)
			}
			if len(body)-off < int(fl) {
				return nil, fmt.Errorf("replica: torn frame body at offset %d", off)
			}
			f.Body = append([]byte(nil), body[off:off+int(fl)]...)
			off += int(fl)
			m.Frames = append(m.Frames, f)
		}
		if off != len(body) {
			return nil, fmt.Errorf("replica: %d trailing bytes after %d frames", len(body)-off, count)
		}
	case MsgSnapshot:
		if len(body) < 12 {
			return nil, fmt.Errorf("replica: snapshot body is %d bytes, want >= 12", len(body))
		}
		m.SnapLSN = binary.LittleEndian.Uint64(body)
		dl := binary.LittleEndian.Uint32(body[8:])
		if len(body) != 12+int(dl) {
			return nil, fmt.Errorf("replica: snapshot body is %d bytes, data declares %d", len(body), dl)
		}
		m.Snapshot = append([]byte(nil), body[12:]...)
	case MsgError:
		if len(body) < 5 {
			return nil, fmt.Errorf("replica: error body is %d bytes, want >= 5", len(body))
		}
		m.ErrCode = body[0]
		ml := binary.LittleEndian.Uint32(body[1:])
		if len(body) != 5+int(ml) {
			return nil, fmt.Errorf("replica: error body is %d bytes, message declares %d", len(body), ml)
		}
		m.ErrMsg = string(body[5:])
	default:
		return nil, fmt.Errorf("replica: unknown message type %d", uint8(typ))
	}
	return m, nil
}
