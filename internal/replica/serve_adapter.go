package replica

import (
	"adp/internal/serve"
	"adp/internal/store"
)

// ServerApplier adapts a follower-mode serving daemon (serve.Server
// with Config.ReadOnly) to the pump's Applier interface: every apply
// routes through the server's apply loop, so replication serializes
// with epoch publishes and followers serve reads that are never torn.
type ServerApplier struct {
	Srv *serve.Server
}

func (a *ServerApplier) ApplyFrames(frames []store.RawFrame) (uint64, int, error) {
	return a.Srv.ReplApply(frames)
}

func (a *ServerApplier) InstallSnapshot(data []byte, lsn uint64) (uint64, error) {
	return a.Srv.ReplInstallSnapshot(data, lsn)
}

func (a *ServerApplier) Promote() error { return a.Srv.PromoteToLeader() }

func (a *ServerApplier) AppliedLSN() uint64 { return a.Srv.AppliedLSN() }

// ServeStatus maps a follower pump's stats onto the serving plane's
// /metrics replication block; register it with SetReplStatusFunc.
func ServeStatus(f *Follower) func() serve.ReplStatus {
	return func() serve.ReplStatus {
		st := f.Stats()
		role := "follower"
		if st.Promoted {
			role = "leader"
		}
		return serve.ReplStatus{
			Role:               role,
			AppliedLSN:         st.Applied,
			LeaderCommittedLSN: st.LeaderCommitted,
			LagFrames:          st.Lag,
			Pulls:              st.Pulls,
			PullErrors:         st.PullErrors,
			FramesReceived:     st.Frames,
			SnapshotsInstalled: st.Snapshots,
			Promoted:           st.Promoted,
			LastPullAgeMS:      int64(st.LastPullAgeMs),
		}
	}
}

// LeaderStatus maps a leader's follower watermarks onto the /metrics
// replication block.
func LeaderStatus(l *Leader, st *store.Store) func() serve.ReplStatus {
	return func() serve.ReplStatus {
		return serve.ReplStatus{
			Role:       "leader",
			AppliedLSN: st.CommittedLSN(),
			Followers:  l.Watermarks(),
		}
	}
}
