package replica

import (
	"reflect"
	"testing"

	"adp/internal/store"
)

func roundTrip(t *testing.T, m *Message) *Message {
	t.Helper()
	got, err := DecodeMessage(EncodeMessage(m))
	if err != nil {
		t.Fatalf("decoding %s: %v", m.Type, err)
	}
	return got
}

func TestWireRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Type: MsgPull, Applied: 42, Max: 512, ID: "fol-1"},
		{Type: MsgPull}, // zero values, empty ID
		{Type: MsgSnapReq},
		{Type: MsgFrames, Committed: 99, Frames: []store.RawFrame{
			{LSN: 7, Kind: 1, Body: []byte{2, 0}},
			{LSN: 8, Kind: 2, Body: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
			{LSN: 9, Kind: 4, Body: []byte{0, 0, 0, 0}},
		}},
		{Type: MsgFrames, Committed: 3}, // heartbeat: no frames
		{Type: MsgSnapshot, SnapLSN: 1000, Snapshot: []byte("snapshot-bytes")},
		{Type: MsgError, ErrCode: ErrCodeDiverged, ErrMsg: "diverged"},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		// Frame bodies decode to empty-vs-nil equivalently; normalise.
		if len(got.Frames) == 0 {
			got.Frames = m.Frames
		}
		if len(got.Snapshot) == 0 {
			got.Snapshot = m.Snapshot
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%s: round-trip %+v != %+v", m.Type, got, m)
		}
	}
}

func TestWireRejects(t *testing.T) {
	valid := EncodeMessage(&Message{Type: MsgPull, Applied: 1, ID: "x"})
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short header", valid[:5]},
		{"bad magic", append([]byte{1, 2, 3, 4}, valid[4:]...)},
		{"truncated body", valid[:len(valid)-1]},
		{"trailing bytes", append(append([]byte(nil), valid...), 0)},
		{"unknown type", func() []byte {
			b := append([]byte(nil), valid...)
			b[4] = 0xEE
			return b
		}()},
		{"pull id overrun", func() []byte {
			b := append([]byte(nil), valid...)
			b[wireHdrLen+12] = 200 // id length beyond body
			return b
		}()},
		{"frame count overrun", func() []byte {
			b := EncodeMessage(&Message{Type: MsgFrames}) // 12-byte body, count 0
			b[wireHdrLen+8] = 0xFF                        // count 255, no frame bytes
			return b
		}()},
	}
	for _, tc := range cases {
		if _, err := DecodeMessage(tc.data); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// FuzzReplicationFrame pins DecodeMessage's contract on arbitrary
// bytes: never panic, never return both a message and an error, and
// anything it accepts re-encodes to bytes that decode to the same
// message (decode∘encode is idempotent past the first decode).
func FuzzReplicationFrame(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(EncodeMessage(&Message{Type: MsgPull, Applied: 42, Max: 16, ID: "fuzz"}))
	f.Add(EncodeMessage(&Message{Type: MsgSnapReq}))
	f.Add(EncodeMessage(&Message{Type: MsgFrames, Committed: 9, Frames: []store.RawFrame{{LSN: 1, Kind: 4, Body: []byte{0, 0, 0, 0}}}}))
	f.Add(EncodeMessage(&Message{Type: MsgSnapshot, SnapLSN: 7, Snapshot: []byte("snap")}))
	f.Add(EncodeMessage(&Message{Type: MsgError, ErrCode: ErrCodeInternal, ErrMsg: "boom"}))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			if m != nil {
				t.Fatal("error with non-nil message")
			}
			return
		}
		re, err := DecodeMessage(EncodeMessage(m))
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		if re.Type != m.Type || re.Applied != m.Applied || re.Committed != m.Committed ||
			re.SnapLSN != m.SnapLSN || re.ErrCode != m.ErrCode || re.ErrMsg != m.ErrMsg ||
			re.ID != m.ID || len(re.Frames) != len(m.Frames) || len(re.Snapshot) != len(m.Snapshot) {
			t.Fatalf("re-decode mismatch: %+v vs %+v", re, m)
		}
	})
}
