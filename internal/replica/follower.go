package replica

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"adp/internal/graph"
	"adp/internal/store"
)

// Conn is one follower→leader request/response channel. Pull sends one
// message and waits for one reply (which, over a chaotic link, may be
// a stale reply to an earlier request — the apply path is idempotent,
// so correlation is not required).
type Conn interface {
	Pull(ctx context.Context, req *Message) (*Message, error)
	Close() error
}

// Dialer opens a fresh Conn to the leader.
type Dialer func(ctx context.Context) (Conn, error)

// Applier is where pulled history lands: a bare store (StoreApplier)
// or a serving daemon routing through its apply loop (the serve
// package's replication API).
type Applier interface {
	// ApplyFrames ingests leader frames idempotently and returns the new
	// durably-applied LSN plus how many commit boundaries landed.
	ApplyFrames(frames []store.RawFrame) (applied uint64, commits int, err error)
	// InstallSnapshot replaces local state with a leader snapshot.
	InstallSnapshot(data []byte, lsn uint64) (applied uint64, err error)
	// Promote fences the log (abort staged state, fresh segment) so the
	// node can start accepting writes.
	Promote() error
	// AppliedLSN is the durably-applied watermark.
	AppliedLSN() uint64
}

// ErrPromoted is returned by Run when the follower promoted itself
// (lease expiry) and stopped pulling.
var ErrPromoted = errors.New("replica: follower promoted to leader")

// FollowerConfig tunes the pull pump.
type FollowerConfig struct {
	// ID identifies this follower in the leader's watermark table.
	ID string
	// Dial opens connections to the leader. Required.
	Dial Dialer
	// PullTimeout bounds one Pull round trip (default 1s).
	PullTimeout time.Duration
	// PollInterval is the idle wait when caught up (default 20ms).
	PollInterval time.Duration
	// BackoffBase/BackoffCap bound the full-jitter reconnect backoff
	// (defaults 10ms / 1s): sleep = U(0, min(cap, base<<attempt)).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Seed drives the jitter; runs with the same seed and the same
	// fault schedule back off identically.
	Seed int64
	// MaxFrames caps frames requested per pull (default 4096).
	MaxFrames int
	// Lease, when positive, auto-promotes the follower once no pull has
	// succeeded for this long — the in-process leader-loss failover used
	// by tests; production promotions are operator-triggered.
	Lease time.Duration
	// Logf receives pump diagnostics; nil discards them.
	Logf func(format string, args ...any)
	// OnApplied, when non-nil, observes every watermark advance (bench
	// hook for replication-lag measurement).
	OnApplied func(lsn uint64)
}

func (c FollowerConfig) pullTimeout() time.Duration {
	if c.PullTimeout <= 0 {
		return time.Second
	}
	return c.PullTimeout
}

func (c FollowerConfig) pollInterval() time.Duration {
	if c.PollInterval <= 0 {
		return 20 * time.Millisecond
	}
	return c.PollInterval
}

func (c FollowerConfig) backoffBase() time.Duration {
	if c.BackoffBase <= 0 {
		return 10 * time.Millisecond
	}
	return c.BackoffBase
}

func (c FollowerConfig) backoffCap() time.Duration {
	if c.BackoffCap <= 0 {
		return time.Second
	}
	return c.BackoffCap
}

func (c FollowerConfig) maxFrames() int {
	if c.MaxFrames <= 0 {
		return 4096
	}
	return c.MaxFrames
}

func (c FollowerConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// FollowerStats is a point-in-time snapshot of the pump's counters.
type FollowerStats struct {
	Applied         uint64 `json:"applied_lsn"`
	LeaderCommitted uint64 `json:"leader_committed_lsn"`
	Lag             uint64 `json:"lag_frames"`
	Pulls           int64  `json:"pulls"`
	PullErrors      int64  `json:"pull_errors"`
	Frames          int64  `json:"frames_received"`
	Snapshots       int64  `json:"snapshots_installed"`
	Promoted        bool   `json:"promoted"`
	// LastPullAgeMs is the time since the last successful pull
	// (negative when none succeeded yet).
	LastPullAgeMs float64 `json:"last_pull_age_ms"`
}

// Follower pulls committed frames from its own durable watermark,
// applies them through an Applier, and resumes from that watermark
// across every drop, duplicate, reorder, delay or reconnect — pulling
// from the durable LSN is what makes the whole protocol idempotent.
type Follower struct {
	applier Applier
	cfg     FollowerConfig

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	once   sync.Once

	pulls           atomic.Int64
	pullErrors      atomic.Int64
	frames          atomic.Int64
	snapshots       atomic.Int64
	leaderCommitted atomic.Uint64
	lastOK          atomic.Int64 // unixnano of last successful pull
	promoted        atomic.Bool
	runErr          atomic.Pointer[error]
}

// NewFollower builds a pump; Start (or Run) begins pulling.
func NewFollower(applier Applier, cfg FollowerConfig) *Follower {
	ctx, cancel := context.WithCancel(context.Background())
	return &Follower{
		applier: applier,
		cfg:     cfg,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
	}
}

// Start runs the pump in a goroutine; Stop (or Promote) ends it.
func (f *Follower) Start() {
	f.once.Do(func() {
		go func() {
			defer close(f.done)
			err := f.Run(f.ctx)
			if err != nil && !errors.Is(err, context.Canceled) {
				f.runErr.Store(&err)
				if !errors.Is(err, ErrPromoted) {
					f.cfg.logf("replica: follower %s stopped: %v", f.cfg.ID, err)
				}
			}
		}()
	})
}

// Stop cancels the pump and waits for it to exit.
func (f *Follower) Stop() {
	f.cancel()
	f.once.Do(func() { close(f.done) }) // never started
	<-f.done
}

// Err reports why the pump stopped (nil while running or after a clean
// cancel).
func (f *Follower) Err() error {
	if p := f.runErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Promote stops the pump, fences the log and flips the node writable —
// the operator-triggered failover path. Safe to call on an
// auto-promoted follower (idempotent).
func (f *Follower) Promote() error {
	f.Stop()
	if f.promoted.Swap(true) {
		return nil
	}
	return f.applier.Promote()
}

// Promoted reports whether this node has been promoted.
func (f *Follower) Promoted() bool { return f.promoted.Load() }

// Applied returns the durably-applied watermark.
func (f *Follower) Applied() uint64 { return f.applier.AppliedLSN() }

// Stats snapshots the pump counters.
func (f *Follower) Stats() FollowerStats {
	st := FollowerStats{
		Applied:         f.applier.AppliedLSN(),
		LeaderCommitted: f.leaderCommitted.Load(),
		Pulls:           f.pulls.Load(),
		PullErrors:      f.pullErrors.Load(),
		Frames:          f.frames.Load(),
		Snapshots:       f.snapshots.Load(),
		Promoted:        f.promoted.Load(),
		LastPullAgeMs:   -1,
	}
	if st.LeaderCommitted > st.Applied {
		st.Lag = st.LeaderCommitted - st.Applied
	}
	if t := f.lastOK.Load(); t > 0 {
		st.LastPullAgeMs = float64(time.Since(time.Unix(0, t))) / float64(time.Millisecond)
	}
	return st
}

// Run is the pull pump: dial, pull from the durable watermark, apply,
// repeat; on any transport error, reconnect with full-jitter backoff
// and re-request from the watermark. Returns ErrPromoted after a lease
// expiry, ctx.Err() on cancel, or the fatal apply/divergence error.
func (f *Follower) Run(ctx context.Context) error {
	rng := rand.New(rand.NewSource(f.cfg.Seed))
	f.lastOK.Store(time.Now().UnixNano())
	var conn Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	attempt := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if f.leaseExpired() {
			return f.autoPromote()
		}
		if conn == nil {
			c, err := f.cfg.Dial(ctx)
			if err != nil {
				f.pullErrors.Add(1)
				if !f.backoff(ctx, rng, &attempt) {
					return ctx.Err()
				}
				continue
			}
			conn = c
		}
		req := &Message{
			Type:    MsgPull,
			Applied: f.applier.AppliedLSN(),
			Max:     uint32(f.cfg.maxFrames()),
			ID:      f.cfg.ID,
		}
		pctx, cancel := context.WithTimeout(ctx, f.cfg.pullTimeout())
		resp, err := conn.Pull(pctx, req)
		cancel()
		if err != nil {
			f.pullErrors.Add(1)
			conn.Close()
			conn = nil
			if !f.backoff(ctx, rng, &attempt) {
				return ctx.Err()
			}
			continue
		}
		attempt = 0
		f.pulls.Add(1)
		f.lastOK.Store(time.Now().UnixNano())
		progressed, fatal, cerr := f.consume(resp)
		if cerr != nil {
			if fatal {
				return cerr
			}
			f.cfg.logf("replica: follower %s: %v", f.cfg.ID, cerr)
			conn.Close()
			conn = nil
			if !f.backoff(ctx, rng, &attempt) {
				return ctx.Err()
			}
			continue
		}
		if !progressed {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(f.cfg.pollInterval()):
			}
		}
	}
}

// consume folds one reply into the applier. fatal marks errors the
// pump cannot retry past (divergence, a poisoned store).
func (f *Follower) consume(resp *Message) (progressed, fatal bool, err error) {
	switch resp.Type {
	case MsgFrames:
		f.leaderCommitted.Store(resp.Committed)
		if len(resp.Frames) == 0 {
			return false, false, nil
		}
		f.frames.Add(int64(len(resp.Frames)))
		before := f.applier.AppliedLSN()
		applied, _, aerr := f.applier.ApplyFrames(resp.Frames)
		if applied > before {
			f.notifyApplied(applied)
		}
		if aerr != nil {
			var gap *store.GapError
			if errors.As(aerr, &gap) {
				// A reordered or duplicated delivery left a hole; the next
				// pull re-requests from the durable watermark.
				return applied > before, false, nil
			}
			return false, true, aerr
		}
		return true, false, nil
	case MsgSnapshot:
		if resp.SnapLSN <= f.applier.AppliedLSN() {
			// Raced a concurrent catch-up; nothing to install.
			return false, false, nil
		}
		applied, aerr := f.applier.InstallSnapshot(resp.Snapshot, resp.SnapLSN)
		if aerr != nil {
			return false, true, fmt.Errorf("replica: installing snapshot at lsn %d: %w", resp.SnapLSN, aerr)
		}
		f.snapshots.Add(1)
		f.notifyApplied(applied)
		return true, false, nil
	case MsgError:
		if resp.ErrCode == ErrCodeDiverged {
			return false, true, fmt.Errorf("%w (%s)", ErrDiverged, resp.ErrMsg)
		}
		return false, false, fmt.Errorf("replica: leader error %d: %s", resp.ErrCode, resp.ErrMsg)
	default:
		return false, false, fmt.Errorf("replica: unexpected reply type %s", resp.Type)
	}
}

func (f *Follower) notifyApplied(lsn uint64) {
	if f.cfg.OnApplied != nil {
		f.cfg.OnApplied(lsn)
	}
}

// backoff sleeps a full-jitter interval; false means ctx ended.
func (f *Follower) backoff(ctx context.Context, rng *rand.Rand, attempt *int) bool {
	max := f.cfg.backoffBase() << uint(*attempt)
	if max > f.cfg.backoffCap() || max <= 0 {
		max = f.cfg.backoffCap()
	}
	if *attempt < 30 {
		*attempt++
	}
	d := time.Duration(rng.Int63n(int64(max) + 1))
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

func (f *Follower) leaseExpired() bool {
	if f.cfg.Lease <= 0 {
		return false
	}
	return time.Since(time.Unix(0, f.lastOK.Load())) > f.cfg.Lease
}

func (f *Follower) autoPromote() error {
	if f.promoted.Swap(true) {
		return ErrPromoted
	}
	f.cfg.logf("replica: follower %s lease expired (no pull for %s); promoting", f.cfg.ID, f.cfg.Lease)
	if err := f.applier.Promote(); err != nil {
		return fmt.Errorf("replica: lease promotion: %w", err)
	}
	return ErrPromoted
}

// StoreApplier applies pulled history straight into a bare store — the
// pump goroutine is the store's single writer. Commit-time fsync
// failures are laddered through RetrySync like the serving plane does;
// AppendReplicated's LSN skip makes the re-apply after a successful
// retry idempotent.
type StoreApplier struct {
	St *store.Store
	// Retries bounds RetrySync attempts per batch (default 3).
	Retries int
	// RetryBase is the backoff unit between attempts (default 1ms).
	RetryBase time.Duration
}

func (a *StoreApplier) retries() int {
	if a.Retries <= 0 {
		return 3
	}
	return a.Retries
}

func (a *StoreApplier) retryBase() time.Duration {
	if a.RetryBase <= 0 {
		return time.Millisecond
	}
	return a.RetryBase
}

// ApplyFrames ingests frames with the RetrySync ladder.
func (a *StoreApplier) ApplyFrames(frames []store.RawFrame) (uint64, int, error) {
	commits, err := a.St.AppendReplicated(frames)
	for attempt := 0; err != nil && a.St.CanRetrySync() && attempt < a.retries(); attempt++ {
		time.Sleep(a.retryBase() << uint(attempt))
		if rerr := a.St.RetrySync(); rerr != nil {
			continue
		}
		commits++ // the interrupted commit completed durably
		var more int
		more, err = a.St.AppendReplicated(frames)
		commits += more
	}
	return a.St.CommittedLSN(), commits, err
}

// InstallSnapshot replaces local state with a leader snapshot.
func (a *StoreApplier) InstallSnapshot(data []byte, lsn uint64) (uint64, error) {
	if err := a.St.InstallSnapshot(data, lsn); err != nil {
		return a.St.CommittedLSN(), err
	}
	return a.St.CommittedLSN(), nil
}

// Promote fences the log for leadership.
func (a *StoreApplier) Promote() error {
	a.St.AbortReplicated()
	return a.St.RotateSegment()
}

// AppliedLSN is the durable watermark.
func (a *StoreApplier) AppliedLSN() uint64 { return a.St.CommittedLSN() }

// Bootstrap fetches the leader's newest snapshot and initialises dir
// as a follower store resuming at that snapshot's LSN.
func Bootstrap(ctx context.Context, dial Dialer, dir string, g *graph.Graph, opts store.Options) (*store.Store, error) {
	conn, err := dial(ctx)
	if err != nil {
		return nil, fmt.Errorf("replica: bootstrap dial: %w", err)
	}
	defer conn.Close()
	resp, err := conn.Pull(ctx, &Message{Type: MsgSnapReq})
	if err != nil {
		return nil, fmt.Errorf("replica: bootstrap snapshot request: %w", err)
	}
	switch resp.Type {
	case MsgSnapshot:
	case MsgError:
		return nil, fmt.Errorf("replica: bootstrap refused: %s", resp.ErrMsg)
	default:
		return nil, fmt.Errorf("replica: bootstrap got %s, want snapshot", resp.Type)
	}
	return store.CreateReplica(dir, g, resp.Snapshot, resp.SnapLSN, opts)
}
