package engine

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"adp/internal/pool"
)

// TestRunCtxCancelledBeforeStart: a dead context fails fast with the
// typed error and an empty (but non-nil) report.
func TestRunCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := testCluster(t, 2)
	init, step := ringProgram(3)
	rep, err := c.RunCtx(ctx, init, step, 20)
	var fre *FailedRunError
	if !errors.As(err, &fre) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want FailedRunError wrapping context.Canceled", err)
	}
	if rep == nil || rep.Supersteps != 0 {
		t.Fatalf("report = %+v, want zero supersteps", rep)
	}
}

// TestRunCtxCancelMidRun: cancelling during superstep 2 returns within
// that barrier; the partial report covers exactly the completed
// supersteps and the partial superstep is discarded.
func TestRunCtxCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := testCluster(t, 3)
	init, inner := ringProgram(10)
	step := func(w *WorkerCtx, s int, inbox []Message) bool {
		if s == 2 && w.ID() == 0 {
			cancel()
		}
		return inner(w, s, inbox)
	}
	rep, err := c.RunCtx(ctx, init, step, 20)
	var fre *FailedRunError
	if !errors.As(err, &fre) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want FailedRunError wrapping context.Canceled", err)
	}
	if fre.Report != rep {
		t.Fatal("error does not carry the returned report")
	}
	if rep.Supersteps != 2 {
		t.Fatalf("Supersteps = %d, want 2 (partial superstep discarded)", rep.Supersteps)
	}
	// Only completed supersteps are accounted: worker 0 charged
	// 1*(0+1) + 1*(1+1) = 3 work units over supersteps 0 and 1.
	if rep.Work[0] != 3 {
		t.Fatalf("Work[0] = %v, want 3", rep.Work[0])
	}
}

// TestRunCtxDeadline: a deadline works through the same path as manual
// cancellation.
func TestRunCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	c := testCluster(t, 2)
	step := func(w *WorkerCtx, s int, inbox []Message) bool {
		time.Sleep(2 * time.Millisecond)
		w.Send((w.ID()+1)%2, Message{Data: []float64{1}})
		return false
	}
	_, err := c.RunCtx(ctx, nil, step, 1_000_000)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestOptionsContextUsedByRun: Run (no explicit ctx) observes
// Options.Context.
func TestOptionsContextUsedByRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := testCluster(t, 2).Configure(Options{Context: ctx})
	init, step := ringProgram(3)
	_, err := c.Run(init, step, 20)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled via Options.Context", err)
	}
}

// TestCancelNoGoroutineLeak: repeated cancelled runs must not grow the
// goroutine count — the pool's helpers are long-lived and merely go
// idle, and the engine spawns nothing of its own.
func TestCancelNoGoroutineLeak(t *testing.T) {
	pl := pool.New(4)
	defer pl.Close()
	c := testCluster(t, 3).UsePool(pl)

	// Warm the pool so its long-lived helpers exist before baselining.
	init, step := ringProgram(3)
	if _, err := c.Run(init, step, 20); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	base := runtime.NumGoroutine()

	for i := 0; i < 50; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		i2, inner := ringProgram(10)
		s2 := func(w *WorkerCtx, s int, inbox []Message) bool {
			if s == 1 && w.ID() == 0 {
				cancel()
			}
			return inner(w, s, inbox)
		}
		if _, err := c.RunCtx(ctx, i2, s2, 20); !errors.Is(err, context.Canceled) {
			t.Fatalf("run %d: err = %v", i, err)
		}
		cancel()
	}
	// Allow any stragglers to park.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d after 50 cancelled runs", base, runtime.NumGoroutine())
}
