// Package engine is the shared-nothing BSP execution substrate this
// reproduction substitutes for the paper's 32-machine GRAPE cluster
// (see DESIGN.md). A Cluster runs one worker goroutine per fragment
// under superstep barriers; workers exchange typed messages through a
// bus that counts messages and bytes. The engine reports both wall
// time and a deterministic simulated parallel cost: per superstep the
// critical path is the maximum per-worker work plus the maximum
// per-worker communication volume, mirroring how a synchronous BSP
// round costs max(compute) + max(comm).
//
// The engine also records per-vertex computation and communication
// work, which is exactly the "running log" Section 4 harvests training
// samples [X(v), t(v)] from.
//
// The hot path is flat (see DESIGN.md "Data layout"): the cluster
// compiles its partition at construction so fragment accessors are
// array reads and binary searches, arc responsibility is a bitset over
// compiled arc slots, per-vertex cost charging is dense, and the
// message plane reuses its outbox/inbox buffers and scalar payload
// arenas — the steady-state superstep loop performs no heap
// allocations (locked in by TestSteadyStateZeroAllocs).
package engine

import (
	"context"
	"fmt"
	"time"

	"adp/internal/fault"
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/pool"
)

// Message is one unit of communication between workers. V names the
// subject vertex; Data carries numeric payload and Adj carries
// adjacency payload (for the neighbourhood-exchange algorithms).
type Message struct {
	V    graph.VertexID
	Kind uint8
	Data []float64
	Adj  []graph.VertexID
}

// Size estimates the wire size of the message in bytes.
func (m Message) Size() int64 {
	return 8 + 8*int64(len(m.Data)) + 4*int64(len(m.Adj))
}

// StepFunc advances one worker by one superstep. inbox holds the
// messages addressed to this worker during the previous superstep
// (grouped by sending worker in ascending order). Returning true
// votes to halt; the run stops when every worker votes to halt in the
// same superstep and no messages are in flight.
//
// The inbox slice (and the payload of SendVal-sent messages) is only
// valid for the duration of the call: the engine reuses the backing
// buffers on the following superstep. Copy values out; do not retain
// the slice.
type StepFunc func(w *WorkerCtx, superstep int, inbox []Message) (halt bool)

// Report aggregates the execution statistics of one Run.
type Report struct {
	Supersteps int
	WallTime   time.Duration
	// Work[i] is worker i's accumulated work units over the run.
	Work []float64
	// MsgCount[i] / MsgBytes[i] count messages/bytes sent by worker i.
	MsgCount []int64
	MsgBytes []int64
	// CriticalWork is Σ over supersteps of max-per-worker work — the
	// BSP compute critical path.
	CriticalWork float64
	// CriticalBytes is Σ over supersteps of max-per-worker sent
	// bytes — the BSP communication critical path.
	CriticalBytes float64

	// Recoveries, Redelivered and Stragglers are fault-tolerance
	// diagnostics: rollback-replays performed, corrupted delivery
	// batches redelivered, and straggler delays absorbed. Like
	// WallTime they are excluded from the determinism contract — a
	// recovered run matches its fault-free twin on every field above,
	// not on these.
	Recoveries  int
	Redelivered int64
	Stragglers  int
}

// DefaultBytesWeight converts a communicated byte into work units for
// SimCost: chosen so that shipping one adjacency entry costs a few
// elementary compute operations, like a 10Gbps NIC against a 2GHz
// core.
const DefaultBytesWeight = 0.25

// SimCost is the deterministic simulated parallel runtime:
// compute critical path + weighted communication critical path. The
// Fig. 9 benches report this quantity (in work units).
func (r *Report) SimCost(bytesWeight float64) float64 {
	return r.CriticalWork + bytesWeight*r.CriticalBytes
}

// String summarises the report on one line.
func (r *Report) String() string {
	return fmt.Sprintf("report{steps=%d critWork=%.4g critBytes=%.4g wall=%v}",
		r.Supersteps, r.CriticalWork, r.CriticalBytes, r.WallTime.Round(time.Millisecond))
}

// TotalMsgBytes sums sent bytes over workers.
func (r *Report) TotalMsgBytes() int64 {
	var s int64
	for _, b := range r.MsgBytes {
		s += b
	}
	return s
}

// Cluster executes BSP programs over a hybrid partition.
type Cluster struct {
	p       *partition.Partition
	n       int
	workers []*WorkerCtx
	// foreignArc[i] is a bitset over fragment i's compiled arc slots:
	// bit k set means a lower fragment also stores arc slot k, so this
	// worker is not responsible for it. Replaces the former
	// per-fragment map[uint64]bool with two array loads per probe.
	foreignArc [][]uint64
	// computeFrag[v] is the fragment of v's e-cut node, or -1 when v
	// is v-cut (computation split across copies).
	computeFrag []int32

	recordCosts bool
	// pl executes superstep fan-outs and message routing; defaults to
	// the process-wide shared pool.
	pl *pool.Pool
	// opts carries the fault-tolerance knobs; zero value = legacy
	// behaviour (no checkpoints, no injection).
	opts Options
}

// NewCluster prepares a cluster over p, compiling the partition into
// its flat execution form first. The partition must not be mutated
// while the cluster is in use (a mutation drops the compiled form and
// the responsibility index would go stale).
func NewCluster(p *partition.Partition) *Cluster {
	c := &Cluster{p: p, n: p.NumFragments(), pl: pool.Default()}
	p.Compile()
	c.buildResponsibility()
	c.workers = make([]*WorkerCtx, c.n)
	for i := 0; i < c.n; i++ {
		c.workers[i] = &WorkerCtx{cluster: c, id: i, frag: p.Fragment(i), outbox: make([][]Message, c.n)}
	}
	return c
}

// EnableCostRecording makes workers keep per-vertex compute and
// communication work, harvested later via HarvestSamples. The dense
// recording arrays are allocated once and survive every reset —
// consecutive Runs each record afresh and can each be harvested
// (locked in by TestCostRecordingSurvivesConsecutiveRuns).
func (c *Cluster) EnableCostRecording() {
	c.recordCosts = true
	nv := c.p.Graph().NumVertices()
	for _, w := range c.workers {
		if w.vertexComp == nil {
			w.vertexComp = make([]float64, nv)
			w.vertexComm = make([]float64, nv)
		}
	}
}

// UsePool makes the cluster schedule supersteps and message routing on
// pl instead of the shared Default pool; pool.Serial() yields the
// deterministic single-threaded mode. Returns c for chaining. Reports
// are bitwise identical for any pool size by construction (every
// superstep writes per-worker slots only); the determinism tests lock
// this in for worker counts 1, 4 and GOMAXPROCS.
func (c *Cluster) UsePool(pl *pool.Pool) *Cluster {
	if pl != nil {
		c.pl = pl
	}
	return c
}

// Partition returns the partition the cluster executes over.
func (c *Cluster) Partition() *partition.Partition { return c.p }

// Worker returns worker i, e.g. to read algorithm state after a run.
func (c *Cluster) Worker(i int) *WorkerCtx { return c.workers[i] }

// buildResponsibility computes, for every replicated arc, which
// fragments are NOT responsible for it (every arc's responsible owner
// is its lowest-id holder), plus each vertex's compute fragment.
// Algorithms that must process each arc of G exactly once filter
// through ResponsibleFor. The result is one bitset per fragment,
// indexed by compiled arc slot.
func (c *Cluster) buildResponsibility() {
	seen := make(map[uint64]bool, c.p.Graph().NumEdges())
	c.foreignArc = make([][]uint64, c.n)
	for i := 0; i < c.n; i++ {
		f := c.p.Fragment(i)
		bits := make([]uint64, (f.NumArcSlots()+63)/64)
		f.ArcSlots(func(slot int, u, v graph.VertexID) {
			k := uint64(u)<<32 | uint64(v)
			if seen[k] {
				bits[slot>>6] |= 1 << (uint(slot) & 63)
			} else {
				seen[k] = true
			}
		})
		c.foreignArc[i] = bits
	}
	nv := c.p.Graph().NumVertices()
	c.computeFrag = make([]int32, nv)
	for v := 0; v < nv; v++ {
		c.computeFrag[v] = -1
		for _, i := range c.p.Copies(graph.VertexID(v)) {
			if c.p.Status(int(i), graph.VertexID(v)) == partition.ECutNode {
				c.computeFrag[v] = i
				break
			}
		}
	}
}

// Run executes the program: init once per worker, then supersteps of
// step until every worker halts with no messages in flight, or the
// superstep budget runs out. The budget is maxSupersteps unless
// Options.MaxSupersteps overrides it; the run context is
// Options.Context (Background when unset). Every failure — including
// non-convergence — returns a *FailedRunError carrying the partial
// Report.
func (c *Cluster) Run(init func(w *WorkerCtx), step StepFunc, maxSupersteps int) (*Report, error) {
	ctx := c.opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	return c.RunCtx(ctx, init, step, maxSupersteps)
}

// RunCtx is Run under an explicit context: cancellation is observed
// at superstep barriers (and between chunk claims inside the compute
// fan-out), so a deadline or Ctrl-C returns within one barrier with
// the partial Report and zero leaked goroutines — the pool's helpers
// are long-lived and simply go idle. The typed-error contract holds on
// every exit path: a non-nil error is always a *FailedRunError whose
// Report is the returned (partial) report, covering exactly the
// completed supersteps — a run that converges in the same barrier a
// cancellation lands in still returns success. The cancellation-point
// sweep test locks both properties in for every observation point.
//
// When Options arms an Injector or CheckpointEvery, RunCtx snapshots
// barrier state (worker State via Snapshotter, in-flight inboxes,
// report accumulators) and recovers injected crashes, transient step
// errors and step panics by rolling back to the last checkpoint and
// replaying, GRAPE-style. Because the injector is deterministic and
// each event fires once, a recovered run's Report matches the
// fault-free run bitwise (diagnostics and WallTime aside).
//
// The superstep loop is allocation-free in the steady state: the
// fan-out closures are hoisted out of the loop, outboxes and inboxes
// are truncated and refilled in place, and SendVal payloads come from
// the workers' double-buffered arenas. Per-superstep heap traffic is
// therefore zero once buffer capacities stabilise (checkpoints and
// recoveries, which clone state by design, are the exception).
func (c *Cluster) RunCtx(ctx context.Context, init func(w *WorkerCtx), step StepFunc, maxSupersteps int) (*Report, error) {
	if c.opts.MaxSupersteps > 0 {
		maxSupersteps = c.opts.MaxSupersteps
	}
	inj := c.opts.Injector
	armed := inj.Armed()
	ckEvery := c.opts.CheckpointEvery
	if ckEvery <= 0 && armed {
		ckEvery = 1
	}
	maxRec := c.opts.MaxRecoveries
	if maxRec <= 0 {
		// Every scheduled event fires at most once, so schedule length
		// plus a margin for step panics always suffices.
		maxRec = len(inj.Schedule()) + 3
	}

	start := time.Now()
	rep := &Report{
		Work:     make([]float64, c.n),
		MsgCount: make([]int64, c.n),
		MsgBytes: make([]int64, c.n),
	}
	fail := func(reason string, err error) (*Report, error) {
		rep.WallTime = time.Since(start)
		return rep, &FailedRunError{Reason: reason, Report: rep, Err: err}
	}
	if err := ctx.Err(); err != nil {
		return fail("cancelled before start", err)
	}
	for _, w := range c.workers {
		w.reset()
	}
	if init != nil {
		c.parallel(func(w *WorkerCtx) { init(w) })
	}
	inboxes := make([][]Message, c.n)
	halts := make([]bool, c.n)
	redeliv := make([]int64, c.n)
	var ck *checkpoint
	lastCk := -1
	if ckEvery > 0 {
		var err error
		if ck, err = c.snapshot(0, inboxes, rep); err != nil {
			return fail("checkpoint failed", err)
		}
		lastCk = 0
	}
	attempts := 0

	// Hoisted fan-out bodies: created once per Run, so the superstep
	// loop spends zero allocations on closures. All of them capture
	// the loop variable s by reference.
	var s int
	stepChunk := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			w := c.workers[i]
			// Flip the scalar arena: parity s&1 is written now, read
			// by receivers during s+1, and truncated here at s+2.
			if s >= 2 {
				w.arenas[s&1] = w.arenas[s&1][:0]
			}
			w.arenaCur = uint8(s & 1)
			w.stepWork = 0
			w.stepBytes = 0
			halts[i] = step(w, s, inboxes[i])
		}
	}
	deliverChunk := func(lo, hi int) {
		// Inbox dst is assembled from every sender's outbox in
		// ascending sender order into dst's capacity-retained buffer,
		// so delivery order is a pure function of the superstep's
		// sends regardless of pool size. The assembled batch is the
		// reliable-delivery ground truth: an injected drop/dup
		// corrupts a copy, the per-batch count check detects it, and
		// the ground truth is "redelivered" — wire accounting stays
		// logical, so the Report is unaffected.
		for dst := lo; dst < hi; dst++ {
			in := inboxes[dst][:0]
			for _, w := range c.workers {
				if msgs := w.outbox[dst]; len(msgs) > 0 {
					in = append(in, msgs...)
				}
			}
			if armed {
				if e, ok := inj.DeliveryFault(s, dst); ok && len(in) > 0 {
					if corrupted := corruptBatch(in, e); len(corrupted) != len(in) {
						redeliv[dst]++
					}
				}
			}
			inboxes[dst] = in
		}
	}
	accountChunk := func(lo, hi int) {
		// Wire accounting and outbox truncation, one item per sender
		// (each writes only its own Report slots). Truncation keeps
		// the buffers' capacity for the next superstep's sends.
		for i := lo; i < hi; i++ {
			w := c.workers[i]
			for dst, msgs := range w.outbox {
				rep.MsgCount[i] += int64(len(msgs))
				for _, m := range msgs {
					rep.MsgBytes[i] += m.Size()
				}
				w.outbox[dst] = msgs[:0]
			}
		}
	}
	rollback := func(cause error) error {
		attempts++
		rep.Recoveries++
		if attempts > maxRec {
			return cause
		}
		c.restore(ck, inboxes, rep)
		s = ck.next - 1 // loop increment resumes at ck.next
		return nil
	}

	for s = 0; s < maxSupersteps; s++ {
		if err := ctx.Err(); err != nil {
			return fail("cancelled", err)
		}
		// Periodic barrier checkpoint.
		if ck != nil && s > lastCk && s%ckEvery == 0 {
			nck, err := c.snapshot(s, inboxes, rep)
			if err != nil {
				return fail("checkpoint failed", err)
			}
			ck, lastCk = nck, s
		}
		// Injected worker faults for this barrier, probed in ascending
		// worker order: a crash aborts the superstep before compute, a
		// transient error lets compute run and discards it, stragglers
		// stall the barrier (wall time only).
		var failEv *fault.Event
		preFail := false
		for i := 0; armed && i < c.n && failEv == nil; i++ {
			for {
				e, ok := inj.WorkerFault(s, i)
				if !ok {
					break
				}
				if e.Kind == fault.Straggler {
					rep.Stragglers++
					if e.Delay > 0 {
						time.Sleep(e.Delay)
					}
					continue
				}
				ev := e
				failEv, preFail = &ev, e.Kind == fault.Crash
				break
			}
		}
		if failEv != nil && preFail {
			if err := rollback(fmt.Errorf("injected fault: %s", failEv)); err != nil {
				return fail("recovery budget exhausted", err)
			}
			continue
		}
		stepPanic, stepErr := c.tryRunChunksCtx(ctx, stepChunk)
		if stepPanic != nil {
			if ck == nil {
				// No fault tolerance configured: propagate like the
				// pool would have.
				panic(stepPanic)
			}
			if err := rollback(stepPanic); err != nil {
				return fail("recovery budget exhausted", err)
			}
			continue
		}
		if stepErr != nil {
			// Cancelled mid-compute: the partial superstep is
			// discarded, the report covers completed supersteps only.
			return fail("cancelled", stepErr)
		}
		if failEv != nil {
			if err := rollback(fmt.Errorf("injected fault: %s", failEv)); err != nil {
				return fail("recovery budget exhausted", err)
			}
			continue
		}
		rep.Supersteps = s + 1
		// Collect the per-superstep critical path.
		var maxWork float64
		var maxBytes int64
		for i, w := range c.workers {
			if w.stepWork > maxWork {
				maxWork = w.stepWork
			}
			if w.stepBytes > maxBytes {
				maxBytes = w.stepBytes
			}
			rep.Work[i] += w.stepWork
		}
		rep.CriticalWork += maxWork
		rep.CriticalBytes += float64(maxBytes)
		c.pl.RunChunks(c.n, 1, deliverChunk)
		for dst := range redeliv {
			rep.Redelivered += redeliv[dst]
			redeliv[dst] = 0
		}
		c.pl.RunChunks(c.n, 1, accountChunk)
		inflight := false
		for i := range inboxes {
			if len(inboxes[i]) > 0 {
				inflight = true
				break
			}
		}
		allHalt := true
		for _, h := range halts {
			if !h {
				allHalt = false
				break
			}
		}
		if allHalt && !inflight {
			rep.WallTime = time.Since(start)
			return rep, nil
		}
		// The harvest phase (critical-path collection, delivery,
		// accounting) runs cancellation-blind so a completed superstep
		// is always accounted in full; a cancellation landing during it
		// is observed here, inside the same barrier. Without this check
		// the run would continue into the next superstep's checkpoint
		// before noticing, and the typed-error contract — every non-nil
		// error is a *FailedRunError — would rest on the top-of-loop
		// check alone.
		if err := ctx.Err(); err != nil {
			return fail("cancelled during harvest", err)
		}
	}
	return fail(fmt.Sprintf("no convergence within %d supersteps", maxSupersteps), nil)
}

// parallel runs fn once per worker on the cluster's pool. Each
// invocation only touches its own WorkerCtx (and slot-indexed result
// slices), so the superstep barrier is exactly the Run return.
func (c *Cluster) parallel(fn func(w *WorkerCtx)) {
	c.pl.RunChunks(c.n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(c.workers[i])
		}
	})
}

// tryRunChunksCtx is a per-worker chunk fan-out with the failure modes
// surfaced instead of propagated: a pool worker panic is captured as
// *pool.Panic (the recovery loop converts it into a rollback), and ctx
// cancellation stops further worker claims and is returned as the ctx
// error. Takes the prebuilt chunk body so the superstep loop does not
// allocate a closure per call.
func (c *Cluster) tryRunChunksCtx(ctx context.Context, fn func(lo, hi int)) (pv *pool.Panic, err error) {
	defer func() {
		if r := recover(); r != nil {
			p, ok := r.(*pool.Panic)
			if !ok {
				panic(r)
			}
			pv = p
		}
	}()
	err = c.pl.RunChunksCtx(ctx, c.n, 1, fn)
	return pv, err
}

// WorkerCtx is one BSP worker bound to a fragment. All methods must
// only be called from the worker's own goroutine during init/step.
type WorkerCtx struct {
	cluster *Cluster
	id      int
	frag    *partition.Fragment

	outbox    [][]Message
	stepWork  float64
	stepBytes int64

	// arenas are the double-buffered scalar payload buffers behind
	// SendVal: parity s&1 is written during superstep s, read by
	// receivers during s+1, and truncated at the start of s+2, so a
	// payload always outlives every reader without any allocation.
	arenas   [2][]float64
	arenaCur uint8

	// vertexComp / vertexComm are dense per-vertex cost accumulators
	// (indexed by global vertex id), nil unless EnableCostRecording.
	vertexComp []float64
	vertexComm []float64

	// State is scratch space owned by the running algorithm.
	State any
}

// reset truncates the reusable buffers (keeping their capacity) and
// clears algorithm and recording state for a fresh Run.
func (w *WorkerCtx) reset() {
	for i := range w.outbox {
		w.outbox[i] = w.outbox[i][:0]
	}
	w.arenas[0] = w.arenas[0][:0]
	w.arenas[1] = w.arenas[1][:0]
	w.arenaCur = 0
	w.State = nil
	for i := range w.vertexComp {
		w.vertexComp[i] = 0
	}
	for i := range w.vertexComm {
		w.vertexComm[i] = 0
	}
}

// ID returns the worker (= fragment) index.
func (w *WorkerCtx) ID() int { return w.id }

// NumWorkers returns the cluster size n.
func (w *WorkerCtx) NumWorkers() int { return w.cluster.n }

// Fragment returns the fragment this worker hosts.
func (w *WorkerCtx) Fragment() *partition.Fragment { return w.frag }

// Partition returns the partition (read-only: structural queries such
// as Master/Copies/Status are allowed; mutation is not).
func (w *WorkerCtx) Partition() *partition.Partition { return w.cluster.p }

// Graph returns the underlying graph (read-only).
func (w *WorkerCtx) Graph() *graph.Graph { return w.cluster.p.Graph() }

// foreignBit reports whether the arc slot is owned by a lower
// fragment: two array loads against the responsibility bitset.
func (w *WorkerCtx) foreignBit(slot int) bool {
	return w.cluster.foreignArc[w.id][slot>>6]&(1<<(uint(slot)&63)) != 0
}

// Responsible reports whether this worker owns the arc (u,v): it holds
// the arc and no lower-id fragment does. Each arc of G is responsible
// at exactly one worker, which is how replicated arcs are processed
// exactly once.
func (w *WorkerCtx) Responsible(u, v graph.VertexID) bool {
	slot, ok := w.frag.ArcIndex(u, v)
	if !ok {
		return false
	}
	return !w.foreignBit(slot)
}

// ResponsibleFor reports whether this worker processes the arc (u,v)
// on behalf of subject's per-vertex aggregation. Computation follows
// the paper's placement rule: an e-cut vertex computes at its e-cut
// node (which holds every incident arc, replicas included), while a
// v-cut vertex's work is split across its copies with replicated arcs
// deduplicated to the lowest holder. Exactly one worker is responsible
// per (subject, arc) pair, and migrating or splitting the subject
// moves its work accordingly.
func (w *WorkerCtx) ResponsibleFor(subject, u, v graph.VertexID) bool {
	slot, ok := w.frag.ArcIndex(u, v)
	if !ok {
		return false
	}
	if cf := w.cluster.computeFrag[subject]; cf >= 0 {
		return int(cf) == w.id
	}
	return !w.foreignBit(slot)
}

// Send enqueues a message for worker dst, delivered next superstep.
// Messages to self are free of charge on the wire but still counted.
func (w *WorkerCtx) Send(dst int, m Message) {
	w.outbox[dst] = append(w.outbox[dst], m)
	if dst != w.id {
		w.stepBytes += m.Size()
	}
}

// SendVal enqueues a single-value message without heap allocation: the
// payload slot is carved from the worker's double-buffered arena, so
// wire accounting is identical to Send with a one-element Data slice
// while the steady-state superstep loop stays allocation-free. The
// payload is valid while the receiver's step runs, like the inbox.
func (w *WorkerCtx) SendVal(dst int, v graph.VertexID, kind uint8, val float64) {
	a := append(w.arenas[w.arenaCur], val)
	w.arenas[w.arenaCur] = a
	w.Send(dst, Message{V: v, Kind: kind, Data: a[len(a)-1 : len(a) : len(a)]})
}

// AppendMirrors appends the fragments holding copies of v other than
// this worker to dst and returns the extended slice. Pass a
// state-held scratch (buf[:0]) to make the call allocation-free.
func (w *WorkerCtx) AppendMirrors(dst []int, v graph.VertexID) []int {
	for _, c := range w.cluster.p.Copies(v) {
		if int(c) != w.id {
			dst = append(dst, int(c))
		}
	}
	return dst
}

// Mirrors returns the fragments holding copies of v other than this
// worker. Allocates; hot paths use AppendMirrors with a scratch
// slice.
func (w *WorkerCtx) Mirrors(v graph.VertexID) []int {
	return w.AppendMirrors(nil, v)
}

// IsMaster reports whether this worker hosts v's master copy.
func (w *WorkerCtx) IsMaster(v graph.VertexID) bool {
	return w.cluster.p.Master(v) == w.id
}

// AddWork charges units of computation to this worker in the current
// superstep.
func (w *WorkerCtx) AddWork(units float64) { w.stepWork += units }

// ChargeVertex charges compute work to the worker and attributes it to
// vertex v for the training log.
func (w *WorkerCtx) ChargeVertex(v graph.VertexID, units float64) {
	w.stepWork += units
	if w.vertexComp != nil {
		w.vertexComp[v] += units
	}
}

// ChargeVertexComm attributes communication work to vertex v for the
// training log (wire accounting happens in Send).
func (w *WorkerCtx) ChargeVertexComm(v graph.VertexID, units float64) {
	if w.vertexComm != nil {
		w.vertexComm[v] += units
	}
}
