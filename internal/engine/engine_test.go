package engine

import (
	"testing"

	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partition"
)

func testCluster(t testing.TB, n int) *Cluster {
	t.Helper()
	g := gen.ErdosRenyi(120, 4, true, 13)
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = v % n
	}
	p, err := partition.FromVertexAssignment(g, assign, n)
	if err != nil {
		t.Fatal(err)
	}
	return NewCluster(p)
}

func TestMessageRouting(t *testing.T) {
	c := testCluster(t, 3)
	var got [3][]float64
	step := func(w *WorkerCtx, s int, inbox []Message) bool {
		switch s {
		case 0:
			// Everyone sends its id to worker (id+1) mod 3.
			w.Send((w.ID()+1)%3, Message{Data: []float64{float64(w.ID())}})
			return false
		case 1:
			for _, m := range inbox {
				got[w.ID()] = append(got[w.ID()], m.Data[0])
			}
			return true
		}
		return true
	}
	rep, err := c.Run(nil, step, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Supersteps != 2 {
		t.Fatalf("supersteps = %d", rep.Supersteps)
	}
	for i := 0; i < 3; i++ {
		want := float64((i + 2) % 3)
		if len(got[i]) != 1 || got[i][0] != want {
			t.Fatalf("worker %d inbox = %v, want [%v]", i, got[i], want)
		}
	}
}

func TestHaltRequiresQuiescence(t *testing.T) {
	c := testCluster(t, 2)
	steps := 0
	step := func(w *WorkerCtx, s int, inbox []Message) bool {
		if w.ID() == 0 {
			steps = s + 1
		}
		// Both halt immediately, but worker 0 keeps a message in
		// flight at superstep 0, forcing one more round.
		if s == 0 && w.ID() == 0 {
			w.Send(1, Message{})
		}
		return true
	}
	if _, err := c.Run(nil, step, 5); err != nil {
		t.Fatal(err)
	}
	if steps != 2 {
		t.Fatalf("ran %d supersteps, want 2 (in-flight message must defer halt)", steps)
	}
}

func TestNoConvergenceError(t *testing.T) {
	c := testCluster(t, 2)
	step := func(w *WorkerCtx, s int, inbox []Message) bool { return false }
	if _, err := c.Run(nil, step, 3); err == nil {
		t.Fatal("expected no-convergence error")
	}
}

func TestWorkAccounting(t *testing.T) {
	c := testCluster(t, 2)
	step := func(w *WorkerCtx, s int, inbox []Message) bool {
		if s == 0 {
			w.AddWork(float64(w.ID()+1) * 10) // worker0: 10, worker1: 20
			w.Send(1-w.ID(), Message{Data: make([]float64, 4)})
			return false
		}
		return true
	}
	rep, err := c.Run(nil, step, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Work[0] != 10 || rep.Work[1] != 20 {
		t.Fatalf("per-worker work = %v", rep.Work)
	}
	if rep.CriticalWork != 20 {
		t.Fatalf("critical work = %v, want max of superstep = 20", rep.CriticalWork)
	}
	// Each message: 8 + 8*4 = 40 bytes, one per worker.
	if rep.MsgBytes[0] != 40 || rep.MsgBytes[1] != 40 {
		t.Fatalf("msg bytes = %v", rep.MsgBytes)
	}
	if rep.CriticalBytes != 40 {
		t.Fatalf("critical bytes = %v", rep.CriticalBytes)
	}
	if rep.SimCost(0.5) != 20+0.5*40 {
		t.Fatalf("simcost = %v", rep.SimCost(0.5))
	}
	if rep.TotalMsgBytes() != 80 {
		t.Fatalf("total bytes = %v", rep.TotalMsgBytes())
	}
}

func TestSelfSendFreeOnWire(t *testing.T) {
	c := testCluster(t, 2)
	step := func(w *WorkerCtx, s int, inbox []Message) bool {
		if s == 0 && w.ID() == 0 {
			w.Send(0, Message{Data: []float64{1}})
			return false
		}
		if s == 1 && w.ID() == 0 && len(inbox) != 1 {
			t.Errorf("self message not delivered")
		}
		return true
	}
	rep, err := c.Run(nil, step, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CriticalBytes != 0 {
		t.Fatalf("self sends must not count on the wire, got %v bytes", rep.CriticalBytes)
	}
	if rep.MsgCount[0] != 1 {
		t.Fatalf("self message should still be counted, got %d", rep.MsgCount[0])
	}
}

// Every arc of G must be responsible at exactly one worker, even with
// replicated arcs (edge-cut partitions replicate cut arcs).
func TestResponsibilityUnique(t *testing.T) {
	g := gen.ErdosRenyi(150, 4, true, 29)
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = (v * 7) % 4
	}
	p, err := partition.FromVertexAssignment(g, assign, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(p)
	g.Edges(func(u, v graph.VertexID) bool {
		owners := 0
		for i := 0; i < 4; i++ {
			if c.Worker(i).Responsible(u, v) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("arc (%d,%d) responsible at %d workers", u, v, owners)
		}
		return true
	})
}

func TestHarvestSamples(t *testing.T) {
	c := testCluster(t, 2)
	c.EnableCostRecording()
	p := c.Partition()
	step := func(w *WorkerCtx, s int, inbox []Message) bool {
		w.Fragment().Vertices(func(v graph.VertexID, adj *partition.Adj) {
			w.ChargeVertex(v, float64(adj.LocalDegree()))
			if p.IsBorder(v) && w.IsMaster(v) {
				w.ChargeVertexComm(v, 2)
			}
		})
		return true
	}
	if _, err := c.Run(nil, step, 2); err != nil {
		t.Fatal(err)
	}
	comp, comm := c.HarvestSamples()
	if len(comp) == 0 || len(comm) == 0 {
		t.Fatalf("harvest empty: %d comp, %d comm", len(comp), len(comm))
	}
	for _, s := range comp {
		if s.T <= 0 {
			t.Fatal("non-positive computation sample")
		}
	}
	for _, s := range comm {
		if s.X[4] < 1 { // Repl index
			t.Fatal("communication sample from non-replicated vertex")
		}
	}
}

func TestHarvestWithoutRecording(t *testing.T) {
	c := testCluster(t, 2)
	if comp, comm := c.HarvestSamples(); comp != nil || comm != nil {
		t.Fatal("harvest without recording should be empty")
	}
}
