package engine

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"adp/internal/fault"
	"adp/internal/pool"
)

// ringState is the Snapshotter test state: workers pass values around a
// ring and accumulate them, so a botched rollback shows up as a skewed
// sum or double-counted work.
type ringState struct {
	sum  float64
	seen int
}

func (st *ringState) Snapshot() any { return &ringState{sum: st.sum, seen: st.seen} }

// ringProgram runs `rounds` message-passing supersteps and halts at the
// quiescent barrier after them, charging deterministic per-worker work.
func ringProgram(rounds int) (func(*WorkerCtx), StepFunc) {
	init := func(w *WorkerCtx) { w.State = &ringState{} }
	step := func(w *WorkerCtx, s int, inbox []Message) bool {
		st := w.State.(*ringState)
		for _, m := range inbox {
			st.sum += m.Data[0]
			st.seen++
		}
		w.AddWork(float64(w.ID()+1) * float64(s+1))
		if s < rounds {
			w.Send((w.ID()+1)%w.NumWorkers(), Message{Data: []float64{float64(w.ID()) + float64(s)*0.5}})
			return false
		}
		return true
	}
	return init, step
}

// assertReportsEqual checks the determinism contract: every field of
// the Report except WallTime and the fault diagnostics must match
// bitwise.
func assertReportsEqual(t *testing.T, want, got *Report) {
	t.Helper()
	if want.Supersteps != got.Supersteps {
		t.Fatalf("Supersteps: %d vs %d", want.Supersteps, got.Supersteps)
	}
	if want.CriticalWork != got.CriticalWork || want.CriticalBytes != got.CriticalBytes {
		t.Fatalf("critical path: (%v,%v) vs (%v,%v)",
			want.CriticalWork, want.CriticalBytes, got.CriticalWork, got.CriticalBytes)
	}
	if want.SimCost(DefaultBytesWeight) != got.SimCost(DefaultBytesWeight) {
		t.Fatalf("SimCost: %v vs %v", want.SimCost(DefaultBytesWeight), got.SimCost(DefaultBytesWeight))
	}
	if !reflect.DeepEqual(want.Work, got.Work) {
		t.Fatalf("Work: %v vs %v", want.Work, got.Work)
	}
	if !reflect.DeepEqual(want.MsgCount, got.MsgCount) {
		t.Fatalf("MsgCount: %v vs %v", want.MsgCount, got.MsgCount)
	}
	if !reflect.DeepEqual(want.MsgBytes, got.MsgBytes) {
		t.Fatalf("MsgBytes: %v vs %v", want.MsgBytes, got.MsgBytes)
	}
}

func ringStates(c *Cluster) []ringState {
	out := make([]ringState, c.n)
	for i := 0; i < c.n; i++ {
		out[i] = *c.Worker(i).State.(*ringState)
	}
	return out
}

// TestRecoveryDeterminismEngine is the engine-level half of the
// headline contract: a run that crashes, errs, drops, duplicates and
// straggles must produce the exact Report and final worker states of
// the fault-free run.
func TestRecoveryDeterminismEngine(t *testing.T) {
	const rounds = 4
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			pl := pool.New(workers)
			defer pl.Close()

			base := testCluster(t, 3).UsePool(pl)
			init, step := ringProgram(rounds)
			wantRep, err := base.Run(init, step, 20)
			if err != nil {
				t.Fatal(err)
			}
			wantStates := ringStates(base)

			events, err := fault.Parse("slow@0:w0:1ms,crash@1:w1,drop@1:d1#2,err@2:w0,dup@2:d0#1,crash@3:w2")
			if err != nil {
				t.Fatal(err)
			}
			faulty := testCluster(t, 3).UsePool(pl).Configure(Options{Injector: fault.NewInjector(events...)})
			init2, step2 := ringProgram(rounds)
			gotRep, err := faulty.Run(init2, step2, 20)
			if err != nil {
				t.Fatal(err)
			}
			assertReportsEqual(t, wantRep, gotRep)
			if !reflect.DeepEqual(wantStates, ringStates(faulty)) {
				t.Fatalf("worker states diverged: %v vs %v", wantStates, ringStates(faulty))
			}
			if gotRep.Recoveries < 3 { // two crashes + one transient
				t.Fatalf("Recoveries = %d, want >= 3", gotRep.Recoveries)
			}
			if gotRep.Redelivered < 1 {
				t.Fatalf("Redelivered = %d, want >= 1", gotRep.Redelivered)
			}
			if gotRep.Stragglers != 1 {
				t.Fatalf("Stragglers = %d, want 1", gotRep.Stragglers)
			}
		})
	}
}

// TestCrashSweepEveryCoordinate exhausts the (superstep, worker, kind)
// grid: a crash or transient anywhere in the run must never perturb the
// deterministic report.
func TestCrashSweepEveryCoordinate(t *testing.T) {
	const rounds = 3
	base := testCluster(t, 3)
	init, step := ringProgram(rounds)
	wantRep, err := base.Run(init, step, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []fault.Kind{fault.Crash, fault.Transient} {
		for s := 0; s <= rounds; s++ {
			for w := 0; w < 3; w++ {
				ev := fault.Event{Kind: kind, Superstep: s, Worker: w}
				t.Run(ev.String(), func(t *testing.T) {
					c := testCluster(t, 3).Configure(Options{Injector: fault.NewInjector(ev)})
					i2, s2 := ringProgram(rounds)
					gotRep, err := c.Run(i2, s2, 20)
					if err != nil {
						t.Fatal(err)
					}
					assertReportsEqual(t, wantRep, gotRep)
					if gotRep.Recoveries != 1 {
						t.Fatalf("Recoveries = %d, want 1", gotRep.Recoveries)
					}
				})
			}
		}
	}
}

// TestCheckpointCadence: with CheckpointEvery > 1 the rollback replays
// more supersteps but must land on the same report.
func TestCheckpointCadence(t *testing.T) {
	const rounds = 5
	base := testCluster(t, 3)
	init, step := ringProgram(rounds)
	wantRep, err := base.Run(init, step, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, every := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("every=%d", every), func(t *testing.T) {
			c := testCluster(t, 3).Configure(Options{
				CheckpointEvery: every,
				Injector:        fault.NewInjector(fault.Event{Kind: fault.Crash, Superstep: 4, Worker: 1}),
			})
			i2, s2 := ringProgram(rounds)
			gotRep, err := c.Run(i2, s2, 20)
			if err != nil {
				t.Fatal(err)
			}
			assertReportsEqual(t, wantRep, gotRep)
		})
	}
}

// TestRecoveryBudgetExhausted: more injected crashes than MaxRecoveries
// allows must surface as a typed failure with the partial report.
func TestRecoveryBudgetExhausted(t *testing.T) {
	crash := fault.Event{Kind: fault.Crash, Superstep: 1, Worker: 0}
	c := testCluster(t, 3).Configure(Options{
		MaxRecoveries: 2,
		Injector:      fault.NewInjector(crash, crash, crash),
	})
	init, step := ringProgram(4)
	rep, err := c.Run(init, step, 20)
	var fre *FailedRunError
	if !errors.As(err, &fre) {
		t.Fatalf("err = %v, want *FailedRunError", err)
	}
	if fre.Reason != "recovery budget exhausted" {
		t.Fatalf("Reason = %q", fre.Reason)
	}
	if fre.Report == nil || rep == nil || fre.Report != rep {
		t.Fatal("partial report not carried on the error")
	}
	if rep.Recoveries != 3 {
		t.Fatalf("Recoveries = %d, want 3", rep.Recoveries)
	}
}

// TestStepPanicRecovered: a step panic under checkpointing is a
// transient fault — rolled back, replayed, and invisible in the report.
func TestStepPanicRecovered(t *testing.T) {
	const rounds = 4
	base := testCluster(t, 3)
	init, step := ringProgram(rounds)
	wantRep, err := base.Run(init, step, 20)
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster(t, 3).Configure(Options{CheckpointEvery: 1})
	var fired atomic.Bool
	i2, s2 := ringProgram(rounds)
	wrapped := func(w *WorkerCtx, s int, inbox []Message) bool {
		if s == 2 && w.ID() == 1 && fired.CompareAndSwap(false, true) {
			panic("poisoned step")
		}
		return s2(w, s, inbox)
	}
	gotRep, err := c.Run(i2, wrapped, 20)
	if err != nil {
		t.Fatal(err)
	}
	assertReportsEqual(t, wantRep, gotRep)
	if gotRep.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", gotRep.Recoveries)
	}
}

// TestStepPanicBudgetExhausted: a step that panics on every attempt
// exhausts the budget and the *pool.Panic surfaces through the typed
// error, with the pool still usable afterwards.
func TestStepPanicBudgetExhausted(t *testing.T) {
	pl := pool.New(4)
	defer pl.Close()
	c := testCluster(t, 3).UsePool(pl).Configure(Options{CheckpointEvery: 1, MaxRecoveries: 2})
	init, inner := ringProgram(4)
	step := func(w *WorkerCtx, s int, inbox []Message) bool {
		if s == 1 && w.ID() == 0 {
			panic("always poisoned")
		}
		return inner(w, s, inbox)
	}
	_, err := c.Run(init, step, 20)
	var fre *FailedRunError
	if !errors.As(err, &fre) || fre.Reason != "recovery budget exhausted" {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
	var pv *pool.Panic
	if !errors.As(err, &pv) {
		t.Fatalf("err %v does not unwrap to *pool.Panic", err)
	}
	// The pool's helpers must have drained: it still serves jobs.
	var n atomic.Int64
	pl.Run(64, func(int) { n.Add(1) })
	if n.Load() != 64 {
		t.Fatalf("pool degraded after recovery failure: %d/64", n.Load())
	}
}

// TestStepPanicWithoutFaultTolerance: zero Options preserves the legacy
// contract — the *pool.Panic propagates to the caller.
func TestStepPanicWithoutFaultTolerance(t *testing.T) {
	c := testCluster(t, 3)
	init, inner := ringProgram(4)
	step := func(w *WorkerCtx, s int, inbox []Message) bool {
		if s == 1 && w.ID() == 0 {
			panic("unprotected")
		}
		return inner(w, s, inbox)
	}
	defer func() {
		r := recover()
		if _, ok := r.(*pool.Panic); !ok {
			t.Fatalf("recovered %v, want *pool.Panic", r)
		}
	}()
	_, _ = c.Run(init, step, 20)
	t.Fatal("panic did not propagate")
}

// TestNonConvergenceTypedError: the non-convergence path returns the
// typed error carrying the partial report instead of discarding it.
func TestNonConvergenceTypedError(t *testing.T) {
	c := testCluster(t, 2)
	step := func(w *WorkerCtx, s int, inbox []Message) bool {
		w.AddWork(1)
		w.Send((w.ID()+1)%2, Message{Data: []float64{1}})
		return false
	}
	rep, err := c.Run(nil, step, 5)
	var fre *FailedRunError
	if !errors.As(err, &fre) {
		t.Fatalf("err = %v, want *FailedRunError", err)
	}
	if fre.Reason != "no convergence within 5 supersteps" {
		t.Fatalf("Reason = %q", fre.Reason)
	}
	if rep == nil || rep.Supersteps != 5 || rep.Work[0] != 5 {
		t.Fatalf("partial report wrong: %+v", rep)
	}

	// Options.MaxSupersteps overrides the call-site budget.
	c2 := testCluster(t, 2).Configure(Options{MaxSupersteps: 3})
	_, err = c2.Run(nil, step, 50)
	if !errors.As(err, &fre) || fre.Reason != "no convergence within 3 supersteps" {
		t.Fatalf("err = %v, want budget-3 non-convergence", err)
	}
}

// TestSnapshotterRequired: checkpointing demands the Snapshotter
// contract from worker state and fails the run cleanly otherwise.
func TestSnapshotterRequired(t *testing.T) {
	c := testCluster(t, 2).Configure(Options{CheckpointEvery: 1})
	init := func(w *WorkerCtx) { w.State = 42 } // not a Snapshotter
	step := func(w *WorkerCtx, s int, inbox []Message) bool { return true }
	_, err := c.Run(init, step, 5)
	var fre *FailedRunError
	if !errors.As(err, &fre) || fre.Reason != "checkpoint failed" {
		t.Fatalf("err = %v, want checkpoint failure", err)
	}
}
