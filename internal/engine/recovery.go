package engine

import (
	"fmt"

	"adp/internal/fault"
	"adp/internal/graph"
)

// checkpoint is one globally consistent snapshot taken at a superstep
// barrier: every worker's algorithm state and outbox, every in-flight
// inbox, and the report accumulators as of the barrier. Restoring a
// checkpoint and replaying from ck.next is indistinguishable from a
// run that never failed — the determinism contract the recovery tests
// pin down.
type checkpoint struct {
	// next is the superstep execution resumes at after a restore.
	next      int
	states    []any
	outboxes  [][][]Message
	inboxes   [][]Message
	work      []float64
	msgCount  []int64
	msgBytes  []int64
	critWork  float64
	critBytes float64
	// comp/comm mirror the workers' dense per-vertex recording arrays;
	// snapshot is a slice clone and restore a copy(), the payoff of
	// moving cost recording off maps.
	comp [][]float64
	comm [][]float64
}

// cloneMessages deep-copies a message batch, including payload slices,
// so replayed supersteps cannot mutate checkpointed traffic (SendVal
// payloads in particular live in arenas that replay overwrites).
func cloneMessages(msgs []Message) []Message {
	if msgs == nil {
		return nil
	}
	out := make([]Message, len(msgs))
	for i, m := range msgs {
		out[i] = Message{V: m.V, Kind: m.Kind}
		if m.Data != nil {
			out[i].Data = append([]float64(nil), m.Data...)
		}
		if m.Adj != nil {
			out[i].Adj = append([]graph.VertexID(nil), m.Adj...)
		}
	}
	return out
}

// snapshot captures the barrier state before superstep next. Worker
// states must be nil or implement Snapshotter (and so must the values
// Snapshot returns, see the interface contract).
func (c *Cluster) snapshot(next int, inboxes [][]Message, rep *Report) (*checkpoint, error) {
	ck := &checkpoint{
		next:      next,
		states:    make([]any, c.n),
		outboxes:  make([][][]Message, c.n),
		inboxes:   make([][]Message, c.n),
		work:      append([]float64(nil), rep.Work...),
		msgCount:  append([]int64(nil), rep.MsgCount...),
		msgBytes:  append([]int64(nil), rep.MsgBytes...),
		critWork:  rep.CriticalWork,
		critBytes: rep.CriticalBytes,
	}
	if c.recordCosts {
		ck.comp = make([][]float64, c.n)
		ck.comm = make([][]float64, c.n)
	}
	for i, w := range c.workers {
		if w.State != nil {
			sn, ok := w.State.(Snapshotter)
			if !ok {
				return nil, fmt.Errorf("engine: worker %d state %T does not implement Snapshotter", i, w.State)
			}
			s := sn.Snapshot()
			if _, ok := s.(Snapshotter); s != nil && !ok {
				return nil, fmt.Errorf("engine: worker %d snapshot %T does not implement Snapshotter", i, s)
			}
			ck.states[i] = s
		}
		outb := make([][]Message, c.n)
		for d, msgs := range w.outbox {
			outb[d] = cloneMessages(msgs)
		}
		ck.outboxes[i] = outb
		ck.inboxes[i] = cloneMessages(inboxes[i])
		if c.recordCosts {
			ck.comp[i] = append([]float64(nil), w.vertexComp...)
			ck.comm[i] = append([]float64(nil), w.vertexComm...)
		}
	}
	return ck, nil
}

// restore rolls every worker, the in-flight inboxes and the report
// accumulators back to the checkpoint barrier. Stored states are
// re-cloned (not handed out) so the checkpoint survives any number of
// subsequent rollbacks untouched. Outboxes and inboxes are cloned into
// fresh memory, which also detaches replay from the workers' SendVal
// arenas — replay refills the arenas from the checkpointed superstep
// onward.
func (c *Cluster) restore(ck *checkpoint, inboxes [][]Message, rep *Report) {
	for i, w := range c.workers {
		if ck.states[i] == nil {
			w.State = nil
		} else {
			w.State = ck.states[i].(Snapshotter).Snapshot()
		}
		outb := make([][]Message, c.n)
		for d, msgs := range ck.outboxes[i] {
			outb[d] = cloneMessages(msgs)
		}
		w.outbox = outb
		inboxes[i] = cloneMessages(ck.inboxes[i])
		w.arenas[0] = w.arenas[0][:0]
		w.arenas[1] = w.arenas[1][:0]
		if c.recordCosts {
			copy(w.vertexComp, ck.comp[i])
			copy(w.vertexComm, ck.comm[i])
		}
	}
	copy(rep.Work, ck.work)
	copy(rep.MsgCount, ck.msgCount)
	copy(rep.MsgBytes, ck.msgBytes)
	rep.CriticalWork = ck.critWork
	rep.CriticalBytes = ck.critBytes
	rep.Supersteps = ck.next
}

// corruptBatch applies a Drop/Duplicate fault to a copy of the
// delivery batch. The engine detects the corruption by count mismatch
// against the assembled ground truth and redelivers — simulating the
// acknowledge-and-retransmit layer of a real BSP message bus, which
// is why drop/dup faults never perturb the deterministic Report.
func corruptBatch(in []Message, e fault.Event) []Message {
	if len(in) == 0 {
		return in
	}
	k := e.Index % len(in)
	switch e.Kind {
	case fault.Drop:
		out := make([]Message, 0, len(in)-1)
		out = append(out, in[:k]...)
		return append(out, in[k+1:]...)
	case fault.Duplicate:
		out := make([]Message, 0, len(in)+1)
		out = append(out, in[:k+1]...)
		out = append(out, in[k])
		return append(out, in[k+1:]...)
	}
	return in
}
