package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"adp/internal/pool"
)

// cutoffCtx is a context whose Err() flips to context.Canceled from
// the cutoff-th probe onward (and stays cancelled). The engine and the
// pool observe cancellation exclusively through Err(), so sweeping the
// cutoff over every probe index of a clean run exercises every
// cancellation point a real context could fire at — including the
// harvest-phase check — deterministically.
type cutoffCtx struct {
	context.Context
	calls  atomic.Int64
	cutoff int64
}

func (c *cutoffCtx) Err() error {
	if c.calls.Add(1) > c.cutoff {
		return context.Canceled
	}
	return nil
}

// TestRunCtxCancellationPointSweep is the table test over cancellation
// points: for every context-observation index of a clean run, a run
// cancelled exactly there must either succeed with the full report
// (the cancellation landed after the convergence return) or return a
// *FailedRunError wrapping context.Canceled whose Report is the
// returned report and matches, bitwise, the same program truncated to
// the same number of completed supersteps. Serial pool, so the probe
// sequence is deterministic.
func TestRunCtxCancellationPointSweep(t *testing.T) {
	const rounds = 5
	build := func() (*Cluster, func(*WorkerCtx), StepFunc) {
		c := testCluster(t, 3).UsePool(pool.Serial())
		init, step := ringProgram(rounds)
		return c, init, step
	}

	// Clean run: the convergence profile and the total probe count.
	probe := &cutoffCtx{Context: context.Background(), cutoff: 1 << 40}
	c, init, step := build()
	full, err := c.RunCtx(probe, init, step, 100)
	if err != nil {
		t.Fatal(err)
	}
	probes := probe.calls.Load()
	if full.Supersteps < 3 {
		t.Fatalf("clean run converged in %d supersteps; program too short to sweep", full.Supersteps)
	}

	// expected[k] is the bitwise report of the same program after
	// exactly k completed supersteps — obtained by exhausting a budget
	// of k, which runs supersteps 0..k-1 in full (compute, delivery,
	// accounting) and then stops, exactly like a cancelled run that
	// discarded its partial superstep.
	expected := make([]*Report, full.Supersteps)
	for k := 1; k < full.Supersteps; k++ {
		c, init, step := build()
		rep, err := c.RunCtx(context.Background(), init, step, k)
		var fre *FailedRunError
		if !errors.As(err, &fre) {
			t.Fatalf("budget %d: err = %v, want *FailedRunError (non-convergence)", k, err)
		}
		expected[k] = rep
	}

	for cut := int64(0); cut <= probes; cut++ {
		ctx := &cutoffCtx{Context: context.Background(), cutoff: cut}
		c, init, step := build()
		rep, err := c.RunCtx(ctx, init, step, 100)
		if err == nil {
			// Converged before the cutoff was observed: must be the
			// complete run, bitwise.
			compareReports(t, cut, rep, full)
			continue
		}
		var fre *FailedRunError
		if !errors.As(err, &fre) {
			t.Fatalf("cutoff %d: err = %v, want *FailedRunError", cut, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cutoff %d: err = %v does not unwrap to context.Canceled", cut, err)
		}
		if fre.Report != rep {
			t.Fatalf("cutoff %d: error carries a different report than the return value", cut)
		}
		k := rep.Supersteps
		if k >= full.Supersteps {
			t.Fatalf("cutoff %d: cancelled run reports %d supersteps, clean run has %d", cut, k, full.Supersteps)
		}
		if k == 0 {
			for i, w := range rep.Work {
				if w != 0 || rep.MsgCount[i] != 0 || rep.MsgBytes[i] != 0 {
					t.Fatalf("cutoff %d: zero-superstep report carries accounting: %+v", cut, rep)
				}
			}
			continue
		}
		compareReports(t, cut, rep, expected[k])
	}
}

// compareReports asserts bitwise equality of every deterministic
// report field (WallTime and the fault diagnostics are excluded by the
// determinism contract).
func compareReports(t *testing.T, cut int64, got, want *Report) {
	t.Helper()
	if got.Supersteps != want.Supersteps {
		t.Fatalf("cutoff %d: Supersteps = %d, want %d", cut, got.Supersteps, want.Supersteps)
	}
	if got.CriticalWork != want.CriticalWork || got.CriticalBytes != want.CriticalBytes {
		t.Fatalf("cutoff %d: critical path (%v, %v), want (%v, %v)",
			cut, got.CriticalWork, got.CriticalBytes, want.CriticalWork, want.CriticalBytes)
	}
	for i := range got.Work {
		if got.Work[i] != want.Work[i] {
			t.Fatalf("cutoff %d: Work[%d] = %v, want %v", cut, i, got.Work[i], want.Work[i])
		}
		if got.MsgCount[i] != want.MsgCount[i] || got.MsgBytes[i] != want.MsgBytes[i] {
			t.Fatalf("cutoff %d: wire accounting of worker %d diverges: (%d, %d) vs (%d, %d)",
				cut, i, got.MsgCount[i], got.MsgBytes[i], want.MsgCount[i], want.MsgBytes[i])
		}
	}
}

// TestRunCtxCancelDuringHarvestTyped pins the harvest-phase exit path
// specifically: a context that first reports cancellation on the probe
// immediately after a full compute fan-out must still produce the
// typed wrapper, with the just-completed superstep fully accounted.
func TestRunCtxCancelDuringHarvestTyped(t *testing.T) {
	// With a serial pool and n workers, one superstep probes the
	// context: once at the top of the loop, once per chunk claim, once
	// at the fan-out return, and once at the harvest check. Sweeping
	// the cutoff across the whole first superstep necessarily includes
	// the post-fan-out (harvest) probe; this test just asserts the
	// contract for each of them without depending on exact indices.
	const n = 3
	for cut := int64(1); cut <= n+3; cut++ {
		c := testCluster(t, n).UsePool(pool.Serial())
		init, step := ringProgram(4)
		ctx := &cutoffCtx{Context: context.Background(), cutoff: cut}
		rep, err := c.RunCtx(ctx, init, step, 100)
		var fre *FailedRunError
		if !errors.As(err, &fre) || !errors.Is(err, context.Canceled) {
			t.Fatalf("cutoff %d: err = %v, want FailedRunError wrapping Canceled", cut, err)
		}
		if fre.Report != rep || rep.Supersteps > 1 {
			t.Fatalf("cutoff %d: rep=%+v fre.Report==rep=%v", cut, rep, fre.Report == rep)
		}
	}
}
