package engine

import (
	"testing"

	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partition"
	"adp/internal/pool"
)

// SendVal must behave exactly like Send with a one-element Data slice:
// same delivery, same payload value, same wire accounting — while the
// payload lives in the worker's reusable arena.
func TestSendValDelivery(t *testing.T) {
	c := testCluster(t, 2).UsePool(pool.Serial())
	const rounds = 6
	step := func(w *WorkerCtx, s int, inbox []Message) bool {
		for _, m := range inbox {
			want := float64(s-1)*10 + float64(1-w.ID())
			if m.Data[0] != want {
				t.Errorf("superstep %d worker %d got %v, want %v", s, w.ID(), m.Data[0], want)
			}
			if m.Size() != 16 {
				t.Errorf("SendVal message size = %d, want 16", m.Size())
			}
		}
		if s < rounds {
			w.SendVal(1-w.ID(), graph.VertexID(s), 9, float64(s)*10+float64(w.ID()))
			return false
		}
		return true
	}
	rep, err := c.Run(nil, step, rounds+3)
	if err != nil {
		t.Fatal(err)
	}
	// rounds messages each way, 16 bytes apiece.
	if rep.MsgBytes[0] != 16*rounds || rep.MsgBytes[1] != 16*rounds {
		t.Fatalf("msg bytes = %v, want %d each", rep.MsgBytes, 16*rounds)
	}
}

// Regression for EnableCostRecording being silently undone by reset():
// two consecutive Runs on the same cluster must both record and both
// harvest — identically, since they execute the same program.
func TestCostRecordingSurvivesConsecutiveRuns(t *testing.T) {
	c := testCluster(t, 2).UsePool(pool.Serial())
	c.EnableCostRecording()
	p := c.Partition()
	step := func(w *WorkerCtx, s int, inbox []Message) bool {
		w.Fragment().Vertices(func(v graph.VertexID, adj *partition.Adj) {
			w.ChargeVertex(v, float64(adj.LocalDegree()))
			if p.IsBorder(v) && w.IsMaster(v) {
				w.ChargeVertexComm(v, 2)
			}
		})
		return true
	}
	run := func() (comp, comm int) {
		t.Helper()
		if _, err := c.Run(nil, step, 2); err != nil {
			t.Fatal(err)
		}
		cs, ms := c.HarvestSamples()
		return len(cs), len(ms)
	}
	comp1, comm1 := run()
	if comp1 == 0 || comm1 == 0 {
		t.Fatalf("first harvest empty: %d comp, %d comm", comp1, comm1)
	}
	comp2, comm2 := run()
	if comp2 != comp1 || comm2 != comm1 {
		t.Fatalf("second harvest (%d comp, %d comm) differs from first (%d, %d): recording did not survive reset",
			comp2, comm2, comp1, comm1)
	}
}

// The steady-state superstep loop — step fan-out, SendVal, delivery,
// accounting — must not allocate. Measured as a delta: once buffer
// capacities are warmed, a 64-superstep Run must allocate no more than
// an 8-superstep Run, so the marginal cost of a superstep is zero
// heap allocations.
func TestSteadyStateZeroAllocs(t *testing.T) {
	c := testCluster(t, 2).UsePool(pool.Serial())
	limit := 0
	step := func(w *WorkerCtx, s int, inbox []Message) bool {
		for _, m := range inbox {
			w.AddWork(m.Data[0])
		}
		if s < limit {
			w.SendVal(1-w.ID(), graph.VertexID(w.ID()), 3, 1)
			w.SendVal(1-w.ID(), graph.VertexID(w.ID()), 4, 2)
			return false
		}
		return true
	}
	run := func(n int) {
		limit = n
		if _, err := c.Run(nil, step, n+3); err != nil {
			t.Fatal(err)
		}
	}
	run(64) // warm buffer capacities
	short := testing.AllocsPerRun(5, func() { run(8) })
	long := testing.AllocsPerRun(5, func() { run(64) })
	if long > short {
		t.Fatalf("64-superstep run allocates %.1f, 8-superstep run %.1f: %.2f allocs per extra superstep, want 0",
			long, short, (long-short)/56)
	}
}

// legacyResponsibility replicates the pre-CSR map-probe ownership test
// (fragment arc-set map probe + foreign-arc map probe) as the baseline
// for BenchmarkResponsibleFor.
type legacyResponsibility struct {
	arcs    []map[uint64]struct{}
	foreign []map[uint64]bool
}

func newLegacyResponsibility(p *partition.Partition) *legacyResponsibility {
	n := p.NumFragments()
	lr := &legacyResponsibility{
		arcs:    make([]map[uint64]struct{}, n),
		foreign: make([]map[uint64]bool, n),
	}
	seen := make(map[uint64]bool)
	for i := 0; i < n; i++ {
		lr.arcs[i] = make(map[uint64]struct{})
		lr.foreign[i] = make(map[uint64]bool)
		p.Fragment(i).ArcSlots(func(_ int, u, v graph.VertexID) {
			k := uint64(u)<<32 | uint64(v)
			lr.arcs[i][k] = struct{}{}
			if seen[k] {
				lr.foreign[i][k] = true
			} else {
				seen[k] = true
			}
		})
	}
	return lr
}

func (lr *legacyResponsibility) responsible(i int, u, v graph.VertexID) bool {
	k := uint64(u)<<32 | uint64(v)
	if _, ok := lr.arcs[i][k]; !ok {
		return false
	}
	return !lr.foreign[i][k]
}

// BenchmarkResponsibleFor probes arc ownership for every graph arc at
// every worker — the inner-loop shape of the PR/TC/CN algorithms —
// comparing the pre-PR map probes against the compiled bitset path.
func BenchmarkResponsibleFor(b *testing.B) {
	g := gen.PowerLaw(gen.PowerLawConfig{N: 4000, AvgDeg: 8, Exponent: 2.1, Directed: true, Seed: 7})
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = (v * 13) % 8
	}
	p, err := partition.FromVertexAssignment(g, assign, 8)
	if err != nil {
		b.Fatal(err)
	}
	c := NewCluster(p)
	type arc struct{ u, v graph.VertexID }
	var arcsList []arc
	g.Edges(func(u, v graph.VertexID) bool {
		arcsList = append(arcsList, arc{u, v})
		return true
	})

	b.Run("map", func(b *testing.B) {
		lr := newLegacyResponsibility(p)
		b.ReportAllocs()
		b.ResetTimer()
		owners := 0
		for i := 0; i < b.N; i++ {
			for _, a := range arcsList {
				for w := 0; w < c.n; w++ {
					if lr.responsible(w, a.u, a.v) {
						owners++
					}
				}
			}
		}
		if owners != len(arcsList)*b.N {
			b.Fatalf("owners = %d", owners)
		}
	})
	b.Run("csr", func(b *testing.B) {
		b.ReportAllocs()
		owners := 0
		for i := 0; i < b.N; i++ {
			for _, a := range arcsList {
				for w := 0; w < c.n; w++ {
					if c.Worker(w).Responsible(a.u, a.v) {
						owners++
					}
				}
			}
		}
		if owners != len(arcsList)*b.N {
			b.Fatalf("owners = %d", owners)
		}
	})
}
