package engine

import (
	"testing"

	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partition"
)

// ResponsibleFor must place each (subject, arc) pair at exactly one
// worker, and at the subject's e-cut node whenever the subject is
// e-cut — the placement rule that makes migrations move work.
func TestResponsibleForSubjectPlacement(t *testing.T) {
	g := gen.PowerLaw(gen.PowerLawConfig{N: 300, AvgDeg: 5, Exponent: 2.1, Directed: true, Seed: 3})
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = (v * 13) % 4
	}
	p, err := partition.FromVertexAssignment(g, assign, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(p)
	g.Edges(func(u, v graph.VertexID) bool {
		owners := 0
		ownerID := -1
		for i := 0; i < 4; i++ {
			if c.Worker(i).ResponsibleFor(v, u, v) {
				owners++
				ownerID = i
			}
		}
		if owners != 1 {
			t.Fatalf("(subject %d, arc %d->%d) responsible at %d workers", v, u, v, owners)
		}
		// v is e-cut in an edge-cut partition: the responsible worker
		// must be its owner fragment.
		if ownerID != assign[v] {
			t.Fatalf("arc into %d processed at %d, want owner %d", v, ownerID, assign[v])
		}
		return true
	})
}

func TestResponsibleForVCutSplit(t *testing.T) {
	g := gen.ErdosRenyi(120, 4, true, 9)
	// Vertex-cut: subjects are v-cut, responsibility falls back to the
	// lowest arc holder; still exactly one owner per (subject, arc).
	p, err := partition.FromEdgeAssignment(g, func(s, d graph.VertexID) int { return int(s^d) % 3 }, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(p)
	g.Edges(func(u, v graph.VertexID) bool {
		owners := 0
		for i := 0; i < 3; i++ {
			if c.Worker(i).ResponsibleFor(v, u, v) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("(subject %d, arc %d->%d): %d owners", v, u, v, owners)
		}
		return true
	})
}

func TestMirrorsAndIsMaster(t *testing.T) {
	g := gen.ErdosRenyi(80, 4, true, 5)
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = v % 3
	}
	p, err := partition.FromVertexAssignment(g, assign, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(p)
	for v := 0; v < g.NumVertices(); v++ {
		vid := graph.VertexID(v)
		masterCount := 0
		for i := 0; i < 3; i++ {
			w := c.Worker(i)
			if w.IsMaster(vid) {
				masterCount++
				if !p.Fragment(i).Has(vid) {
					t.Fatalf("master of %d at fragment %d without a copy", v, i)
				}
			}
			mirrors := w.Mirrors(vid)
			if want := len(p.Copies(vid)); p.Fragment(i).Has(vid) && len(mirrors) != want-1 {
				t.Fatalf("vertex %d: %d mirrors from fragment %d, want %d", v, len(mirrors), i, want-1)
			}
			for _, mi := range mirrors {
				if mi == i {
					t.Fatalf("Mirrors(%d) includes self", v)
				}
			}
		}
		if masterCount != 1 {
			t.Fatalf("vertex %d has %d masters", v, masterCount)
		}
	}
}
