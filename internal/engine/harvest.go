package engine

import (
	"sort"

	"adp/internal/costmodel"
	"adp/internal/graph"
	"adp/internal/partition"
)

// HarvestSamples converts the per-vertex work recorded during the last
// run into cost-model training samples: computation samples for every
// charged non-dummy copy, and communication samples for every charged
// border master — precisely the sampling rule of Section 4 ("we only
// pick vertices that are used in computation" / "we only collect the
// communication cost of master nodes on fragment borders").
//
// EnableCostRecording must have been called before Run.
func (c *Cluster) HarvestSamples() (comp, comm []costmodel.Sample) {
	if !c.recordCosts {
		return nil, nil
	}
	for i, w := range c.workers {
		for _, v := range sortedKeys(w.vertexComp) {
			units := w.vertexComp[v]
			if units <= 0 {
				continue
			}
			switch c.p.Status(i, v) {
			case partition.ECutNode, partition.VCutNode:
				comp = append(comp, costmodel.Sample{X: costmodel.Extract(c.p, i, v), T: units})
			}
		}
		for _, v := range sortedKeys(w.vertexComm) {
			units := w.vertexComm[v]
			if units <= 0 {
				continue
			}
			if c.p.IsBorder(v) && c.p.Master(v) == i {
				comm = append(comm, costmodel.Sample{X: costmodel.Extract(c.p, i, v), T: units})
			}
		}
	}
	return comp, comm
}

func sortedKeys(m map[graph.VertexID]float64) []graph.VertexID {
	keys := make([]graph.VertexID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	return keys
}
