package engine

import (
	"adp/internal/costmodel"
	"adp/internal/graph"
	"adp/internal/partition"
)

// HarvestSamples converts the per-vertex work recorded during the last
// run into cost-model training samples: computation samples for every
// charged non-dummy copy, and communication samples for every charged
// border master — precisely the sampling rule of Section 4 ("we only
// pick vertices that are used in computation" / "we only collect the
// communication cost of master nodes on fragment borders").
//
// The recording arrays are dense (indexed by vertex id), so harvesting
// is a linear ascending scan — the same vertex order the former sorted
// map-key walk produced.
//
// EnableCostRecording must have been called before Run.
func (c *Cluster) HarvestSamples() (comp, comm []costmodel.Sample) {
	if !c.recordCosts {
		return nil, nil
	}
	for i, w := range c.workers {
		for vi, units := range w.vertexComp {
			if units <= 0 {
				continue
			}
			v := graph.VertexID(vi)
			switch c.p.Status(i, v) {
			case partition.ECutNode, partition.VCutNode:
				comp = append(comp, costmodel.Sample{X: costmodel.Extract(c.p, i, v), T: units})
			}
		}
		for vi, units := range w.vertexComm {
			if units <= 0 {
				continue
			}
			v := graph.VertexID(vi)
			if c.p.IsBorder(v) && c.p.Master(v) == i {
				comm = append(comm, costmodel.Sample{X: costmodel.Extract(c.p, i, v), T: units})
			}
		}
	}
	return comp, comm
}
