package engine

import (
	"context"
	"fmt"

	"adp/internal/fault"
)

// Options configures the fault-tolerance and termination behaviour of
// a Cluster's runs. The zero value preserves the pre-fault-tolerance
// engine exactly: no checkpoints, no injection, Background context,
// caller-supplied superstep budget.
type Options struct {
	// MaxSupersteps, when > 0, overrides the superstep budget passed
	// to Run — the knob the cmds expose so algorithm call sites need
	// no change.
	MaxSupersteps int
	// CheckpointEvery takes a globally consistent snapshot (per-worker
	// State + in-flight inboxes + report accumulators) at every k-th
	// superstep barrier. 0 disables checkpointing unless an Injector
	// is armed, in which case every barrier is checkpointed.
	CheckpointEvery int
	// MaxRecoveries bounds rollback-replay attempts per run. 0 sizes
	// the budget to the armed schedule (every event fires at most
	// once, so schedule length + a margin always suffices).
	MaxRecoveries int
	// Injector arms deterministic fault injection for this cluster's
	// runs. nil runs fault-free.
	Injector *fault.Injector
	// Context, when non-nil, is the default run context used by Run
	// (RunCtx callers pass their own).
	Context context.Context
}

// Configure sets the cluster's run options. Returns c for chaining,
// like UsePool.
func (c *Cluster) Configure(opts Options) *Cluster {
	c.opts = opts
	return c
}

// Snapshotter is the deep-copy contract checkpointing requires of
// WorkerCtx.State: Snapshot returns a copy sharing no mutable memory
// with the receiver, and the returned value must itself implement
// Snapshotter (so a stored checkpoint can be re-cloned on every
// rollback, keeping the checkpoint pristine across repeated
// recoveries). All algorithms in internal/algorithms implement it.
type Snapshotter interface {
	Snapshot() any
}

// FailedRunError is the typed failure every non-nil error path of
// Run/RunCtx returns: non-convergence, cancellation, checkpoint
// failure, or an exhausted recovery budget. Report always carries the
// partial accounting up to the last completed superstep, so callers
// can report partial cost instead of discarding the run.
type FailedRunError struct {
	// Reason is a short human-readable failure class, e.g.
	// "no convergence within 10 supersteps".
	Reason string
	// Report is the partial report; never nil.
	Report *Report
	// Err is the underlying cause (context error, *pool.Panic,
	// injected fault), or nil when Reason stands alone.
	Err error
}

func (e *FailedRunError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("engine: %s: %v", e.Reason, e.Err)
	}
	return "engine: " + e.Reason
}

// Unwrap exposes the underlying cause to errors.Is/As, so callers can
// match context.Canceled, context.DeadlineExceeded or *pool.Panic
// through the typed wrapper.
func (e *FailedRunError) Unwrap() error { return e.Err }
