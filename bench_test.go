package adp_test

import (
	"os"
	"sync"
	"testing"

	"adp/internal/bench"
)

// Each benchmark regenerates one table or figure of the paper's
// Section 7 (see DESIGN.md for the experiment index). The rendered
// table is printed once per process so `go test -bench=.` doubles as
// the reproduction report; the timed quantity is the full experiment
// run (partitioning, refinement and simulated execution included).

var printOnce sync.Map

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printOnce.LoadOrStore(id, true); !done {
			tbl.Fprint(os.Stdout)
		}
	}
}

// Table 3: partition metrics (fv, fe, λe, λv, λCN).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// Fig 9(a)-(j): execution cost of the five algorithms, Exp-1.
func BenchmarkFig9CNLiveJournal(b *testing.B) { benchExperiment(b, "fig9a") }
func BenchmarkFig9CNTwitter(b *testing.B)     { benchExperiment(b, "fig9b") }
func BenchmarkFig9TCLiveJournal(b *testing.B) { benchExperiment(b, "fig9c") }
func BenchmarkFig9TCTwitter(b *testing.B)     { benchExperiment(b, "fig9d") }
func BenchmarkFig9WCCTwitter(b *testing.B)    { benchExperiment(b, "fig9e") }
func BenchmarkFig9WCCUKWeb(b *testing.B)      { benchExperiment(b, "fig9f") }
func BenchmarkFig9PRTwitter(b *testing.B)     { benchExperiment(b, "fig9g") }
func BenchmarkFig9PRUKWeb(b *testing.B)       { benchExperiment(b, "fig9h") }
func BenchmarkFig9SSSPTwitter(b *testing.B)   { benchExperiment(b, "fig9i") }
func BenchmarkFig9SSSPTraffic(b *testing.B)   { benchExperiment(b, "fig9j") }

// Fig 9(k): refinement share of partitioning time, Exp-3.
func BenchmarkFig9K(b *testing.B) { benchExperiment(b, "fig9k") }

// Fig 9(l): scalability with |G|, Exp-5.
func BenchmarkFig9L(b *testing.B) { benchExperiment(b, "fig9l") }

// Table 4 / Fig 10(a): composite partition effectiveness, Exp-2.
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// Fig 10(b): composite partitioning time, Exp-4.
func BenchmarkFig10B(b *testing.B) { benchExperiment(b, "fig10b") }

// Exp-4 space: composite vs separate storage.
func BenchmarkCompositeSpace(b *testing.B) { benchExperiment(b, "space") }

// Table 5: cost-model learning accuracy and time, Exp-6.
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

// Fig 11 (appendix): phase decomposition of the refiners.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// Exp-6 remark: monolithic single-machine runtime vs partitioned
// execution (the Gunrock comparison).
func BenchmarkSeqCompare(b *testing.B) { benchExperiment(b, "seqcmp") }

// DESIGN.md ablations: GetCandidates BFS order, MAssign, GetDest set
// cover, VMerge, batch size.
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablation") }

// Contribution (3): Ginger's manual degree threshold vs the learned
// cost model.
func BenchmarkGingerSweep(b *testing.B) { benchExperiment(b, "gingersweep") }
