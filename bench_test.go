package adp_test

import (
	"os"
	"sync"
	"testing"

	"adp/internal/algorithms"
	"adp/internal/bench"
	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/gen"
	"adp/internal/partition"
	"adp/internal/partitioner"
	"adp/internal/pool"
	"adp/internal/refine"
)

// Each benchmark regenerates one table or figure of the paper's
// Section 7 (see DESIGN.md for the experiment index). The rendered
// table is printed once per process so `go test -bench=.` doubles as
// the reproduction report; the timed quantity is the full experiment
// run (partitioning, refinement and simulated execution included).

var printOnce sync.Map

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printOnce.LoadOrStore(id, true); !done {
			tbl.Fprint(os.Stdout)
		}
	}
}

// Table 3: partition metrics (fv, fe, λe, λv, λCN).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// Fig 9(a)-(j): execution cost of the five algorithms, Exp-1.
func BenchmarkFig9CNLiveJournal(b *testing.B) { benchExperiment(b, "fig9a") }
func BenchmarkFig9CNTwitter(b *testing.B)     { benchExperiment(b, "fig9b") }
func BenchmarkFig9TCLiveJournal(b *testing.B) { benchExperiment(b, "fig9c") }
func BenchmarkFig9TCTwitter(b *testing.B)     { benchExperiment(b, "fig9d") }
func BenchmarkFig9WCCTwitter(b *testing.B)    { benchExperiment(b, "fig9e") }
func BenchmarkFig9WCCUKWeb(b *testing.B)      { benchExperiment(b, "fig9f") }
func BenchmarkFig9PRTwitter(b *testing.B)     { benchExperiment(b, "fig9g") }
func BenchmarkFig9PRUKWeb(b *testing.B)       { benchExperiment(b, "fig9h") }
func BenchmarkFig9SSSPTwitter(b *testing.B)   { benchExperiment(b, "fig9i") }
func BenchmarkFig9SSSPTraffic(b *testing.B)   { benchExperiment(b, "fig9j") }

// Fig 9(k): refinement share of partitioning time, Exp-3.
func BenchmarkFig9K(b *testing.B) { benchExperiment(b, "fig9k") }

// Fig 9(l): scalability with |G|, Exp-5.
func BenchmarkFig9L(b *testing.B) { benchExperiment(b, "fig9l") }

// Table 4 / Fig 10(a): composite partition effectiveness, Exp-2.
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// Fig 10(b): composite partitioning time, Exp-4.
func BenchmarkFig10B(b *testing.B) { benchExperiment(b, "fig10b") }

// Exp-4 space: composite vs separate storage.
func BenchmarkCompositeSpace(b *testing.B) { benchExperiment(b, "space") }

// Table 5: cost-model learning accuracy and time, Exp-6.
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

// Fig 11 (appendix): phase decomposition of the refiners.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// Exp-6 remark: monolithic single-machine runtime vs partitioned
// execution (the Gunrock comparison).
func BenchmarkSeqCompare(b *testing.B) { benchExperiment(b, "seqcmp") }

// DESIGN.md ablations: GetCandidates BFS order, MAssign, GetDest set
// cover, VMerge, batch size.
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablation") }

// Contribution (3): Ginger's manual degree threshold vs the learned
// cost model.
func BenchmarkGingerSweep(b *testing.B) { benchExperiment(b, "gingersweep") }

// poolModes are the two scheduling strategies the runtime guards
// compare: the shared bounded pool every hot path now runs on, and the
// goroutine-per-item fan-out it replaced (pool.Unbounded, kept only as
// this baseline).
var poolModes = []struct {
	name string
	pl   func() *pool.Pool
}{
	{"pooled", pool.Default},
	{"spawn-per-item", pool.Unbounded},
}

var migrateFixture struct {
	once sync.Once
	base *partition.Partition
	m    costmodel.CostModel
}

func migrateSetup(b *testing.B) (*partition.Partition, costmodel.CostModel) {
	b.Helper()
	migrateFixture.once.Do(func() {
		g := gen.PowerLaw(gen.PowerLawConfig{N: 4000, AvgDeg: 8, Exponent: 2.0, Directed: true, Seed: 17})
		assign := make([]int, g.NumVertices())
		// Concentrate the low-id hubs in fragment 0 so the refiner has
		// real migration pressure (the Example-1 pathology).
		for v := range assign {
			assign[v] = v * 4 / len(assign)
		}
		p, err := partition.FromVertexAssignment(g, assign, 4)
		if err != nil {
			panic(err)
		}
		migrateFixture.base = p
		migrateFixture.m = costmodel.Reference(costmodel.CN)
	})
	return migrateFixture.base, migrateFixture.m
}

// BenchmarkParallelMigrate guards the refiner hot path: the full
// ParE2H schedule (concurrent probe passes at every superstep) on the
// shared pool versus the goroutine-per-probe baseline. allocs/op is
// the headline number — per-item spawning pays two allocations per
// probe before any refinement work happens.
func BenchmarkParallelMigrate(b *testing.B) {
	base, m := migrateSetup(b)
	for _, mode := range poolModes {
		b.Run(mode.name, func(b *testing.B) {
			pl := mode.pl()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := base.Clone()
				refine.ParE2H(p, m, refine.Config{Pool: pl})
			}
		})
	}
}

// BenchmarkEngineRun guards the BSP engine: five PageRank supersteps
// over an 8-fragment cluster, scheduled on the shared pool versus
// goroutine-per-fragment spawning, allocs/op reported.
func BenchmarkEngineRun(b *testing.B) {
	g := gen.PowerLaw(gen.PowerLawConfig{N: 6000, AvgDeg: 8, Exponent: 2.1, Directed: true, Seed: 23})
	p, err := partitioner.FennelEdgeCut(g, 8, partitioner.FennelConfig{})
	if err != nil {
		b.Fatal(err)
	}
	opts := algorithms.Options{PRIterations: 5}
	for _, mode := range poolModes {
		b.Run(mode.name, func(b *testing.B) {
			pl := mode.pl()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := algorithms.Run(engine.NewCluster(p).UsePool(pl), costmodel.PR, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
