// Package adp is a from-scratch Go reproduction of "Application Driven
// Graph Partitioning" (Fan, Xu, Yin, Yu, Zhou; SIGMOD 2020 and its
// journal extension): learned per-algorithm cost models (hA, gA) drive
// hybrid refinements of edge-cut and vertex-cut partitions (E2H/V2H),
// and composite partitioners (ME2H/MV2H) serve a batch of algorithms
// from one compact partition.
//
// The implementation lives under internal/: graph and generators,
// the hybrid-partition model, baseline partitioners, the cost-model
// learning pipeline, a BSP execution engine with cost accounting, the
// five evaluation algorithms (CN, TC, WCC, PR, SSSP), the refiners,
// the composite partitioners and the experiment harness that
// regenerates every table and figure of the paper's Section 7
// (see DESIGN.md and EXPERIMENTS.md). Entry points:
//
//	cmd/adpart   — partition + refine a graph for an algorithm (or batch)
//	cmd/adbench  — regenerate any paper table/figure by id
//	cmd/adtrain  — learn cost models from engine running logs
//	examples/    — runnable walkthroughs of the public pipeline
//
// The benchmarks in bench_test.go regenerate each experiment under
// `go test -bench`.
package adp
