module adp

go 1.22
