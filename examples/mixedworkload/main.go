// Mixed workload: build ONE composite partition serving all five
// algorithms (CN, TC, WCC, PR, SSSP) at once — the Section-6 scenario
// where PageRank, common neighbours and triangle counting must run on
// the same graph at the same time.
//
//	go run ./examples/mixedworkload             # pool sized to the machine
//	go run ./examples/mixedworkload -workers 1  # deterministic single-threaded
//
// The printed numbers are identical for every -workers value: the
// shared worker pool guarantees schedule-independent engine reports.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"adp/internal/algorithms"
	"adp/internal/composite"
	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/fault"
	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partitioner"
	"adp/internal/pool"
)

func main() {
	workers := flag.Int("workers", 0, "worker-pool size for refinement and the BSP engine (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "seed for rand:N fault schedules")
	timeout := flag.Duration("timeout", 0, "abort the batch after this duration (0 = no timeout)")
	faultSpec := flag.String("faults", "", `fault schedule injected into every run: grammar spec or "rand:N" (results are unchanged by design)`)
	flag.Parse()
	if *workers != 0 {
		pool.SetDefaultWorkers(*workers)
	}
	events, err := fault.FromFlag(*faultSpec, *seed, 4, 8)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// TC needs an undirected view; the whole batch shares it, exactly
	// as the paper runs its batch on one graph.
	g := graph.Symmetrize(gen.SocialSmall())
	fmt.Println("graph:", g)

	base, err := partitioner.FennelEdgeCut(g, 4, partitioner.FennelConfig{})
	if err != nil {
		log.Fatal(err)
	}

	var models []costmodel.CostModel
	for _, a := range costmodel.Algos() {
		models = append(models, costmodel.Reference(a))
	}
	comp, stats, err := composite.ME2H(base, models, composite.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("composite built in %v: %d vertices shared by all five partitions (Init)\n",
		stats.Total.Round(1e6), stats.InitShared)
	fmt.Printf("storage: composite %d arcs vs separate %d arcs (%.0f%% saved), fc = %.2f\n",
		comp.StorageArcs(), comp.SeparateStorageArcs(),
		(1-float64(comp.StorageArcs())/float64(comp.SeparateStorageArcs()))*100, comp.FC())

	// Run every algorithm over its own bundled partition. Each run gets
	// its own clone of the fault schedule; recovery replays to identical
	// barrier state, so the printed costs never depend on -faults.
	opts := algorithms.Options{SSSPSource: 1, PRIterations: 5}
	inj := fault.NewInjector(events...)
	for j, a := range costmodel.Algos() {
		c := engine.NewCluster(comp.Partition(j)).
			Configure(engine.Options{Context: ctx, Injector: inj.Clone()})
		out, err := algorithms.Run(c, a, opts)
		if err != nil {
			log.Fatal(err)
		}
		want := algorithms.SeqOutcome(g, a, opts)
		fmt.Printf("  %-4v simulated cost %10.4g  recoveries=%d  result matches single-machine oracle: %v\n",
			a, out.Report.SimCost(engine.DefaultBytesWeight), out.Report.Recoveries,
			out.Checksum == want.Checksum)
	}
}
