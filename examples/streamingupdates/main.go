// Streaming updates: keep a composite partition coherent under edge
// deletions and insertions using the Section-6.1 edge index — the
// scenario that motivates composite partitions over k separate copies
// ("the coherence problem when G is updated").
//
//	go run ./examples/streamingupdates
package main

import (
	"fmt"
	"log"
	"math/rand"

	"adp/internal/composite"
	"adp/internal/costmodel"
	"adp/internal/gen"
	"adp/internal/graph"
	"adp/internal/partitioner"
)

func main() {
	g := gen.SocialSmall()
	base, err := partitioner.FennelEdgeCut(g, 4, partitioner.FennelConfig{})
	if err != nil {
		log.Fatal(err)
	}
	models := []costmodel.CostModel{
		costmodel.Reference(costmodel.PR),
		costmodel.Reference(costmodel.WCC),
		costmodel.Reference(costmodel.SSSP),
	}
	comp, _, err := composite.ME2H(base, models, composite.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("composite of %d partitions over %v, fc = %.2f\n", comp.K(), g, comp.FC())

	// Delete 100 random existing edges coherently: the index locates
	// every copy across cores and residuals in one lookup each.
	rng := rand.New(rand.NewSource(7))
	edges := g.EdgeList()
	deleted := 0
	for _, idx := range rng.Perm(len(edges))[:100] {
		e := edges[idx]
		if comp.DeleteEdge(e.Src, e.Dst) {
			deleted++
		}
	}
	fmt.Printf("deleted %d edges from all %d partitions coherently\n", deleted, comp.K())

	// Insert edges: aligned destinations land in the shared core and
	// are stored once; divergent destinations go to residuals.
	core := 0
	for i := 0; i < 100; i++ {
		u := graph.VertexID(rng.Intn(g.NumVertices()))
		v := graph.VertexID(rng.Intn(g.NumVertices()))
		if u == v {
			continue
		}
		dest := make([]int, comp.K())
		frag := rng.Intn(comp.N())
		aligned := rng.Intn(2) == 0
		for j := range dest {
			if aligned {
				dest[j] = frag
			} else {
				dest[j] = (frag + j) % comp.N()
			}
		}
		if err := comp.InsertEdge(u, v, dest); err != nil {
			log.Fatal(err)
		}
		if aligned {
			core++
		}
	}
	fmt.Printf("inserted 100 edges (%d aligned -> stored once in a core)\n", core)

	if err := comp.ValidateIndex(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("coherence index consistent after updates ✓")
}
