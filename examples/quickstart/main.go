// Quickstart: partition a graph for PageRank the application-driven
// way and watch the parallel cost drop.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"adp/internal/algorithms"
	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/gen"
	"adp/internal/partitioner"
	"adp/internal/refine"
)

func main() {
	// 1. A skewed social graph (the liveJournal stand-in).
	g := gen.SocialSmall()
	fmt.Println("graph:", g)

	// 2. A conventional edge-cut: balanced by vertex count, oblivious
	//    to what will run on it.
	base, err := partitioner.FennelEdgeCut(g, 4, partitioner.FennelConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. The cost model of the target algorithm (Table 5's hPR/gPR;
	//    see examples/costlearning for learning one from running logs).
	model := costmodel.Reference(costmodel.PR)
	before := costmodel.Evaluate(base, model)

	// 4. Refine the edge-cut into a PR-driven hybrid partition.
	refined := base.Clone()
	stats := refine.ParE2H(refined, model, refine.Config{})
	after := costmodel.Evaluate(refined, model)

	fmt.Printf("budget B = %.4g; %d vertices migrated, %d edges split, %d masters moved\n",
		stats.Budget, stats.Migrated, stats.SplitEdges, stats.MastersMoved)
	fmt.Printf("modelled parallel cost: %.4g -> %.4g\n",
		costmodel.ParallelCost(before), costmodel.ParallelCost(after))

	// 5. Run PageRank over both partitions on the BSP engine and
	//    compare the simulated parallel runtime; results are identical.
	baseOut, err := algorithms.Run(engine.NewCluster(base), costmodel.PR, algorithms.Options{})
	if err != nil {
		log.Fatal(err)
	}
	refOut, err := algorithms.Run(engine.NewCluster(refined), costmodel.PR, algorithms.Options{})
	if err != nil {
		log.Fatal(err)
	}
	diff := baseOut.Value - refOut.Value
	if diff < 0 {
		diff = -diff
	}
	fmt.Printf("engine simulated cost:  %.4g -> %.4g (identical ranks: %v)\n",
		baseOut.Report.SimCost(engine.DefaultBytesWeight),
		refOut.Report.SimCost(engine.DefaultBytesWeight),
		diff < 1e-9*(1+baseOut.Value))
}
