// Cost learning: harvest a running log from the BSP engine and learn
// hCN/gCN by SGD — the Section-4 pipeline end to end. The learned
// polynomial is then used to drive a refinement, closing the loop.
//
//	go run ./examples/costlearning
package main

import (
	"fmt"
	"log"

	"adp/internal/algorithms"
	"adp/internal/costmodel"
	"adp/internal/engine"
	"adp/internal/gen"
	"adp/internal/partitioner"
	"adp/internal/refine"
)

func main() {
	// 1. Collect [X(v), t(v)] samples by running CN over several
	//    graphs with per-vertex cost recording on (the "running log").
	var comp, comm []costmodel.Sample
	for i, g := range gen.TrainingGraphs()[:6] {
		// Alternate edge-cut and vertex-cut partitions: the paper
		// imposes no restriction on how training graphs are cut.
		var cluster *engine.Cluster
		if i%2 == 0 {
			ec, err := partitioner.HashEdgeCut(g, 3)
			if err != nil {
				log.Fatal(err)
			}
			cluster = engine.NewCluster(ec)
		} else {
			vc, err := partitioner.GridVertexCut(g, 3)
			if err != nil {
				log.Fatal(err)
			}
			cluster = engine.NewCluster(vc)
		}
		cluster.EnableCostRecording()
		if _, _, err := algorithms.RunCN(cluster, algorithms.CNOptions{}); err != nil {
			log.Fatal(err)
		}
		hc, hm := cluster.HarvestSamples()
		comp = append(comp, hc...)
		comm = append(comm, hm...)
	}
	fmt.Printf("harvested %d computation and %d communication samples\n", len(comp), len(comm))

	// 2. Train hCN with the paper's 80/20 split.
	train, test := costmodel.Split(comp, 0.8, 1)
	vars, degree := costmodel.LearnableVars(costmodel.CN)
	h, err := costmodel.Train(costmodel.PolyTerms(vars, degree), train, costmodel.TrainConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned hCN = %s\n", h)
	fmt.Printf("test MSRE   = %.4f (paper's bar: ≤ 0.11)\n", costmodel.MSRE(h, test))

	// 3. Drive a refinement with the LEARNED model (not the reference)
	//    and verify it balances the CN workload.
	g := gen.SocialSmall()
	base, err := partitioner.FennelEdgeCut(g, 4, partitioner.FennelConfig{})
	if err != nil {
		log.Fatal(err)
	}
	model := costmodel.CostModel{H: h, G: costmodel.Reference(costmodel.CN).G}
	before := costmodel.Evaluate(base, model)
	refined := base.Clone()
	refine.ParE2H(refined, model, refine.Config{})
	after := costmodel.Evaluate(refined, model)
	fmt.Printf("refinement driven by the learned model: parallel cost %.4g -> %.4g (λ %.2f -> %.2f)\n",
		costmodel.ParallelCost(before), costmodel.ParallelCost(after),
		costmodel.LambdaCost(before), costmodel.LambdaCost(after))
}
